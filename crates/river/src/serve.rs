//! Event-driven pipeline service: many concurrent `streamin`
//! connections multiplexed onto a small worker pool by one
//! readiness-driven event loop.
//!
//! The paper's pipelines are explicitly distributed — "segments can
//! receive and emit records using the `streamin` and `streamout`
//! operators … enabling instantiation of segments and the construction
//! of a pipeline across networked hosts" (§2) — and an archive-scale
//! deployment has many *mostly idle* sensors pushing clip streams at
//! one analysis host. [`PipelineServer`] is that host's service loop,
//! built readiness-first (DESIGN.md §17) so a session costs a socket
//! and a decode buffer rather than a parked thread:
//!
//! 1. **One event loop, N workers.** A single supervisor thread owns
//!    every socket and waits for readability with `poll(2)` (via the
//!    offline `polling` shim). Arriving bytes are pushed into the
//!    session's incremental [`RecordAssembler`]; once whole records
//!    are ready they are dispatched as a *batch* to a worker-pool
//!    thread ([`set_workers`](PipelineServer::set_workers)) that runs
//!    them through the session's own clone of the operator chain. `M`
//!    sessions ([`set_max_sessions`](PipelineServer::set_max_sessions))
//!    multiplex over `N` threads, with `M ≫ N` the intended shape.
//! 2. **Accept-time backpressure.** The listener is only polled while
//!    a session slot is free, so excess clients queue in the OS accept
//!    backlog rather than being half-served. A second, decode-side
//!    valve stops reading any socket whose chain has fallen behind
//!    ([`RecordAssembler::backlog`]), moving backpressure into the
//!    peer's TCP window.
//! 3. **Repair isolation.** A session that dies mid-scope (abrupt
//!    disconnect, truncation) gets `BadCloseScope` repairs injected
//!    into *its* chain, exactly like single-connection `streamin`; a
//!    session whose wire turns poisonous (CRC mismatch, bad magic) is
//!    aborted with the same repair
//!    ([`RecordAssembler::abort_repair`]). One session's chain
//!    crashing, stalling or panicking never blocks its neighbours:
//!    each session has at most one batch in flight, so a slow chain
//!    occupies one worker while the loop keeps serving every other
//!    socket.
//! 4. **Idle policy.** With
//!    [`set_idle_timeout`](PipelineServer::set_idle_timeout) armed, a
//!    session whose wire stays silent past the limit is reaped: a
//!    `session_timeout` event fires, its open scopes are repaired
//!    through its chain and the session reports an `idle timeout`
//!    error. Dormant-but-alive sensors stay connected by sending the
//!    4-byte keepalive sentinel ([`crate::codec::write_keepalive`],
//!    [`crate::net::StreamOut::keepalive`]) — any wire bytes, record
//!    or keepalive, reset the clock.
//! 5. **Shutdown.** [`ServerHandle::shutdown`] stops accepting, lets
//!    every in-flight session drain to its natural end, joins the pool
//!    and returns a [`ServerReport`]: one [`SessionReport`] per
//!    session (its [`StreamEnd`], record/byte counts and per-stage
//!    [`StreamStats`]) plus the aggregate via [`StreamStats::merge`].
//! 6. **Telemetry.** With [`PipelineServer::set_telemetry`] enabled,
//!    each session forks its own stage timers
//!    ([`crate::telemetry::Telemetry::fork_stages`]) and shares one
//!    event ring (lane = session id), now including per-session
//!    keepalive and timeout events. Session summaries carry wall-clock
//!    duration, wire-idle time and a per-session
//!    [`crate::telemetry::Snapshot`]; the final report merges them,
//!    and [`ServerHandle::telemetry_snapshot`] reads the live event
//!    stream while the server runs.
//!
//! A session moves through five states, all owned by the loop:
//! *accepting* → *reading* (bytes → assembler) → *executing* (a batch
//! on a worker) → *draining* (final flush/repair batch dispatched) →
//! *closed* (report recorded). Reading and executing overlap freely —
//! the loop keeps decoding while the chain crunches the previous
//! batch.
//!
//! Sessions — not scope shards — are the unit of concurrency here:
//! each connection is an independent record stream with its own scope
//! state and its own operator state, so no splitter or ordered merge
//! is needed; the network already partitioned the work.
//!
//! # Example
//!
//! ```
//! use dynamic_river::operator::SharedSink;
//! use dynamic_river::net::send_all;
//! use dynamic_river::prelude::*;
//! use dynamic_river::serve::PipelineServer;
//! use std::net::TcpListener;
//!
//! let mut chain = Pipeline::new();
//! chain.add(MapPayload::new("gain", |v: &mut [f64]| {
//!     v.iter_mut().for_each(|x| *x *= 2.0);
//! }));
//! let mut server = PipelineServer::from_pipeline(&chain).unwrap();
//! server.set_max_sessions(8).set_workers(2);
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let out = SharedSink::new();
//! let per_session = out.clone();
//! let handle = server
//!     .start(listener, move |_info| Box::new(per_session.clone()))
//!     .unwrap();
//!
//! let records = vec![
//!     Record::open_scope(1, vec![]),
//!     Record::data(0, Payload::f64(vec![21.0])),
//!     Record::close_scope(1),
//! ];
//! send_all(handle.local_addr(), &records).unwrap();
//!
//! handle.wait_for_completed(1);
//! let report = handle.shutdown().unwrap();
//! assert_eq!(report.sessions.len(), 1);
//! assert_eq!(report.clean_sessions(), 1);
//! assert_eq!(report.workers, 2);
//! assert_eq!(report.session_capacity, 8);
//! assert_eq!(out.take()[1].payload.as_f64().unwrap(), &[42.0]);
//! ```

// Library code in this module must surface failures as errors, never
// panics; unwraps are confined to the test module below.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::PipelineError;
use crate::net::{RecordAssembler, StreamEnd};
use crate::operator::{Operator, Sink};
use crate::pipeline::{
    emit_scope_event, feed_chain, flush_chain, Pipeline, SinkTotals, StageStats, StreamStats,
};
use crate::record::Record;
use crate::telemetry::{EventKind, EventSink, Snapshot, Telemetry, TelemetryConfig};
use crossbeam::channel::{unbounded, Receiver, Sender};
use polling::PollFd;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Socket read buffer: one readiness wake drains the socket in chunks
/// of this size.
const READ_CHUNK: usize = 8 * 1024;

/// Fairness bound: at most this many bytes are read from one socket
/// per loop iteration, so a firehose client cannot starve its
/// neighbours of the loop's attention.
const READ_BURST: usize = 64 * 1024;

/// Records per dispatched batch: large enough to amortize the
/// loop↔worker handoff, small enough that completions (and therefore
/// per-stage timing attribution) stay responsive.
const BATCH_RECORDS: usize = 256;

/// Decode-ahead bound per session: once this many decoded events are
/// queued ahead of the chain, the loop stops reading that socket and
/// lets backpressure move into the peer's TCP window.
const BACKLOG_CAP: usize = 4096;

/// Completed-session counter shared between the event loop and the
/// [`ServerHandle`], so callers can wait for a known client fleet to be
/// fully served before shutting down.
#[derive(Debug, Default)]
struct Progress {
    completed: Mutex<u64>,
    changed: Condvar,
}

impl Progress {
    fn bump(&self) {
        // A panicked session poisons nothing observable here: the
        // counter is a bare u64, so recover the guard and go on.
        let mut n = self
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *n += 1;
        self.changed.notify_all();
    }
}

/// Identity of one accepted session, handed to the sink factory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session number, assigned in accept order starting at 1.
    pub id: u64,
    /// Peer address of the connection.
    pub peer: String,
}

/// Everything one session reported when it finished — the
/// session-tagged counterpart of a single `streamin` run's
/// `(StreamEnd, received)` pair, extended with wire-byte accounting
/// ([`crate::codec::read_record_counted`]) and the session chain's
/// per-stage [`StreamStats`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session number (accept order, from 1).
    pub id: u64,
    /// Peer address of the connection.
    pub peer: String,
    /// How the session's stream ended.
    pub end: StreamEnd,
    /// Records received over the wire (synthesized repairs excluded).
    pub received: u64,
    /// Wire bytes consumed (frames, sentinels, partial trailing frame).
    pub wire_bytes: u64,
    /// Keepalive sentinels the peer sent to hold its slot open.
    pub keepalives: u64,
    /// Per-stage statistics of the session's cloned chain.
    pub stats: StreamStats,
    /// Wire format version the peer sent (`None` if no frame decoded) —
    /// negotiation is sender-driven, so this is how the server learns
    /// which format each session used.
    pub wire_version: Option<u8>,
    /// The codec/chain/sink error that ended the session, if any. Scope
    /// repair has already been applied when this is set.
    pub error: Option<String>,
    /// Wall-clock time from accept to the report being written.
    pub duration: Duration,
    /// Portion of [`duration`](Self::duration) the session spent *not*
    /// executing on a worker — waiting for wire bytes, or for a worker
    /// slot. Under the event loop an idle session holds no thread, so
    /// this is bookkeeping, not a parked resource.
    pub idle: Duration,
    /// The session's telemetry [`Snapshot`]: its own per-stage latency
    /// histograms (each session forks fresh timers,
    /// [`Telemetry::fork_stages`]) plus the events its lane (= session
    /// id) emitted. Empty when the server's telemetry is
    /// [`TelemetryConfig::Off`].
    pub telemetry: Snapshot,
}

impl SessionReport {
    /// `true` when the session ended with the clean sentinel, all
    /// scopes closed and no error.
    pub fn is_clean(&self) -> bool {
        self.end == StreamEnd::Clean && self.error.is_none()
    }
}

/// Final report of a server run: per-session reports plus their
/// aggregate.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// One report per accepted session, ascending session id.
    pub sessions: Vec<SessionReport>,
    /// All session statistics folded together ([`StreamStats::merge`]):
    /// record/byte totals add, `peak_burst` is the worst session's
    /// burst.
    pub aggregate: StreamStats,
    /// The configured concurrent-session capacity `M` — how many
    /// sockets the loop will multiplex at once
    /// ([`PipelineServer::set_max_sessions`]). Distinct from
    /// [`workers`](Self::workers) now that sessions are not threads.
    pub session_capacity: usize,
    /// The worker-pool width `N` — how many chains can execute
    /// simultaneously ([`PipelineServer::set_workers`]).
    pub workers: usize,
    /// High-water mark of concurrently open sessions observed during
    /// the run — evidence of how much multiplexing actually happened.
    pub peak_sessions: usize,
    /// Set when the accept loop stopped early on a non-transient error
    /// (chain construction failure, fatal listener error). Completed
    /// sessions are still fully reported.
    pub accept_error: Option<String>,
    /// Merged telemetry across the whole run: every session's stage
    /// histograms folded bucket-wise ([`Snapshot::merge_stages`] — the
    /// sessions share one event ring, so events are taken once from the
    /// server's log rather than re-merged per session) plus the full
    /// interleaved event list.
    pub telemetry: Snapshot,
}

impl ServerReport {
    /// Sessions that ended cleanly ([`SessionReport::is_clean`]).
    pub fn clean_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_clean()).count()
    }

    /// Sessions that needed scope repair or ended in error.
    pub fn repaired_sessions(&self) -> usize {
        self.sessions.len() - self.clean_sessions()
    }
}

/// Boxed per-session output sink (must be `Send`: it travels to
/// worker-pool threads inside execution batches).
pub type SessionSink = Box<dyn Sink + Send>;

/// A multi-session pipeline server: one readiness-driven event loop
/// multiplexing up to [`max_sessions`](Self::set_max_sessions)
/// concurrent `streamin` connections across a pool of
/// [`workers`](Self::set_workers) execution threads, each session
/// running its own clone of an operator chain. See the
/// [module docs](self) for the full lifecycle.
pub struct PipelineServer {
    build: Box<dyn FnMut(u64) -> Result<Pipeline, PipelineError> + Send>,
    max_sessions: usize,
    workers: usize,
    idle_timeout: Option<Duration>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for PipelineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineServer")
            .field("max_sessions", &self.max_sessions)
            .field("workers", &self.workers)
            .field("idle_timeout", &self.idle_timeout)
            .finish_non_exhaustive()
    }
}

/// Default for both the session capacity and the worker-pool width:
/// the host's available parallelism. Capacity can be raised far above
/// this — sessions are sockets, not threads.
fn default_parallelism() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl PipelineServer {
    /// Builds a server whose sessions each run a
    /// [`clone_chain`](Pipeline::clone_chain)ed copy of `pipeline`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Analysis`] when the pre-flight
    /// [`Pipeline::check`] proves the chain broken, or an operator
    /// error naming the first operator that does not support
    /// duplication ([`crate::operator::Operator::clone_op`]) — both
    /// validated up front, not at first accept.
    pub fn from_pipeline(pipeline: &Pipeline) -> Result<Self, PipelineError> {
        pipeline.preflight(false)?;
        let prototype = pipeline.clone_chain()?;
        Ok(PipelineServer {
            // The prototype was validated cloneable above, so the
            // per-session clone can only fail if an operator's
            // `clone_op` is non-deterministic — propagated as this
            // session's build error rather than trusted away.
            build: Box::new(move |_session| prototype.clone_chain()),
            max_sessions: default_parallelism(),
            workers: default_parallelism(),
            idle_timeout: None,
            // Inherit the pipeline's telemetry *config* but not its
            // registry: server sessions fork their own timers, and
            // sharing the source pipeline's histograms would mix any
            // pre-server runs into the server's report.
            telemetry: Telemetry::new(pipeline.telemetry().config()),
        })
    }

    /// Builds a server whose session chains come from a factory;
    /// `build(id)` is called once per accepted session — the route for
    /// chains whose operators do not implement `clone_op`. Each built
    /// chain is pre-flighted ([`Pipeline::check`]) before its session
    /// starts; analysis errors surface as the server's accept error.
    pub fn from_factory(mut build: impl FnMut(u64) -> Pipeline + Send + 'static) -> Self {
        PipelineServer {
            build: Box::new(move |id| {
                let chain = build(id);
                chain.preflight(false)?;
                Ok(chain)
            }),
            max_sessions: default_parallelism(),
            workers: default_parallelism(),
            idle_timeout: None,
            telemetry: Telemetry::off(),
        }
    }

    /// Enables telemetry for the server: every session gets its own
    /// stage timers ([`Telemetry::fork_stages`]) and all sessions share
    /// one event ring, with each session's events tagged by its id as
    /// the lane. Read results per session from
    /// [`SessionReport::telemetry`], merged from
    /// [`ServerReport::telemetry`], or live from
    /// [`ServerHandle::telemetry_snapshot`].
    pub fn set_telemetry(&mut self, config: TelemetryConfig) -> &mut Self {
        self.telemetry = Telemetry::new(config);
        self
    }

    /// The server's [`Telemetry`] registry handle (cheap clone).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Sets the concurrent-session capacity `M`: how many connections
    /// the event loop will multiplex at once. The listener is only
    /// polled while a slot is free, so this is the accept-time
    /// backpressure bound. A session is a socket plus decode state —
    /// not a thread — so `M` far above
    /// [`set_workers`](Self::set_workers) is the intended shape for
    /// fleets of mostly-idle sensors.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn set_max_sessions(&mut self, limit: usize) -> &mut Self {
        assert!(limit > 0, "max_sessions must be non-zero");
        self.max_sessions = limit;
        self
    }

    /// The concurrent-session capacity in effect.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Sets the worker-pool width `N`: how many session chains can
    /// execute simultaneously. Defaults to the host's available
    /// parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn set_workers(&mut self, workers: usize) -> &mut Self {
        assert!(workers > 0, "workers must be non-zero");
        self.workers = workers;
        self
    }

    /// The worker-pool width in effect.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Arms the idle-session reaper: a session whose wire produces no
    /// bytes for `timeout` is ended with scope repair and an
    /// `idle timeout` error (a `session_timeout` telemetry event marks
    /// the reap). Any bytes reset the clock, including the keepalive
    /// sentinel ([`crate::net::StreamOut::keepalive`]) that carries no
    /// records. Defaults to off: sessions may idle forever.
    pub fn set_idle_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// The idle-session timeout in effect (`None` = never reap).
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// Starts serving on `listener`: spawns the event loop (which owns
    /// the listener and every session socket) and its worker pool,
    /// then returns immediately with a [`ServerHandle`]. `make_sink`
    /// is invoked once per accepted session (on the loop thread) to
    /// produce that session's output sink.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] if the listener's local address
    /// cannot be resolved or the loop thread cannot be spawned.
    pub fn start<F>(
        self,
        listener: TcpListener,
        make_sink: F,
    ) -> Result<ServerHandle, PipelineError>
    where
        F: FnMut(&SessionInfo) -> SessionSink + Send + 'static,
    {
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let progress = Arc::new(Progress::default());
        let worker_progress = Arc::clone(&progress);
        let cfg = LoopCfg {
            capacity: self.max_sessions,
            workers: self.workers,
            idle_timeout: self.idle_timeout,
        };
        let mut build = self.build;
        let telemetry = self.telemetry;
        let supervisor_telemetry = telemetry.clone();
        let supervisor = thread::Builder::new()
            .name("pipeline-server".into())
            .spawn(move || {
                event_loop(
                    &listener,
                    &mut build,
                    make_sink,
                    &cfg,
                    &flag,
                    &worker_progress,
                    &supervisor_telemetry,
                )
            })
            .map_err(PipelineError::Io)?;
        Ok(ServerHandle {
            addr,
            shutdown,
            progress,
            supervisor,
            telemetry,
        })
    }
}

/// Control handle for a running [`PipelineServer`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    progress: Arc<Progress>,
    supervisor: JoinHandle<Result<ServerReport, PipelineError>>,
    telemetry: Telemetry,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live telemetry [`Snapshot`] of the running server: the shared
    /// event ring (all sessions interleaved, lane = session id), read
    /// without stopping anything. Per-session stage histograms are
    /// forked per session and land in each [`SessionReport::telemetry`]
    /// (merged in [`ServerReport::telemetry`]) when the session ends.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Number of sessions fully served so far.
    ///
    /// # Panics
    ///
    /// Panics if a service thread panicked while holding the counter.
    pub fn sessions_completed(&self) -> u64 {
        *self
            .progress
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks until at least `n` sessions have been fully served —
    /// connection acceptance is asynchronous (a client may write its
    /// whole stream and exit while the connection still sits in the
    /// accept backlog), so a caller that knows its client fleet size
    /// waits here before [`shutdown`](Self::shutdown).
    pub fn wait_for_completed(&self, n: u64) {
        let mut completed = self
            .progress
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *completed < n {
            completed = self
                .progress
                .changed
                .wait(completed)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Gracefully shuts the server down: stops accepting new
    /// connections, lets every in-flight session drain to its natural
    /// end (each recording its own per-session [`StreamEnd`]), joins
    /// the worker pool and returns the final [`ServerReport`]. If the
    /// accept loop had already stopped on a fatal error, the completed
    /// sessions are still reported, with the cause in
    /// [`ServerReport::accept_error`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] only if the service threads could
    /// not be spawned.
    ///
    /// # Panics
    ///
    /// Panics if the server's event-loop thread panicked.
    pub fn shutdown(self) -> Result<ServerReport, PipelineError> {
        self.shutdown.store(true, Ordering::Release);
        // Wake a poll that is blocked with the listener in its set via
        // a throwaway connection; a loop busy with sessions re-checks
        // the flag on every completion instead.
        let _ = TcpStream::connect(self.addr);
        match self.supervisor.join() {
            Ok(report) => report,
            // The loop only panics on a bug; re-raise it intact.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// Static configuration of one event-loop run.
struct LoopCfg {
    capacity: usize,
    workers: usize,
    idle_timeout: Option<Duration>,
}

/// The per-session execution state that shuttles between the loop and
/// the worker pool: the session's cloned chain, its stage stats, its
/// sink and its event sink. At most one of these is in flight per
/// session, which is what serializes a session's records while
/// different sessions execute truly in parallel.
struct ExecState {
    ops: Vec<Box<dyn Operator>>,
    stats: Vec<StageStats>,
    totals: SinkTotals,
    sink: SessionSink,
    events: EventSink,
}

/// One unit of chain work: records to feed, plus end-of-session
/// semantics. `finish` flushes operator state after the records;
/// `repair` marks a scope-repair drain (synthesized `BadCloseScope`
/// records after a wire fault or idle reap), which is fed
/// error-tolerantly and always flushed — exactly the blocking
/// `streamin` driver's three termination paths.
struct Batch {
    records: Vec<Record>,
    finish: bool,
    repair: bool,
}

/// A batch dispatched to the pool, carrying the session's chain.
struct Job {
    sid: u64,
    exec: ExecState,
    batch: Batch,
}

/// A worker's completion notice: the chain comes back (unless the
/// batch panicked), with any chain/sink error and the execution time.
struct BatchDone {
    sid: u64,
    exec: Option<ExecState>,
    error: Option<String>,
    finished: bool,
    busy: Duration,
}

/// One live session, owned entirely by the event loop.
struct Session {
    info: SessionInfo,
    stream: TcpStream,
    fd: polling::OsFd,
    assembler: RecordAssembler,
    /// The session's chain when resident; `None` while a batch is out
    /// on a worker.
    exec: Option<ExecState>,
    /// Final (flush or repair) batch waiting for the chain to return.
    pending_finish: Option<Batch>,
    /// Loop-side event sink (same ring and lane as the chain's).
    events: EventSink,
    /// Per-session telemetry fork, for the closing snapshot.
    telemetry: Telemetry,
    started: Instant,
    last_activity: Instant,
    busy: Duration,
    /// No more socket reads: EOF, read error, wire fault or reap.
    read_done: bool,
    /// The final batch has been dispatched; nothing more may follow.
    finishing: bool,
    error: Option<String>,
    keepalives_seen: u64,
}

impl Session {
    /// Whether the loop should poll this session's socket: the wire is
    /// still live and the decode-ahead backlog has room.
    fn wants_read(&self) -> bool {
        !self.read_done && self.assembler.end().is_none() && self.assembler.backlog() <= BACKLOG_CAP
    }
}

/// What each slot in the poll set refers to.
enum PollTag {
    Waker,
    Listener,
    Session(u64),
}

/// The event loop: accepts, polls, decodes, dispatches and reaps.
/// Returns the final report once shutdown (or a fatal accept error)
/// has been observed and every accepted session has drained.
fn event_loop<F>(
    listener: &TcpListener,
    build: &mut (dyn FnMut(u64) -> Result<Pipeline, PipelineError> + Send),
    mut make_sink: F,
    cfg: &LoopCfg,
    shutdown: &AtomicBool,
    progress: &Arc<Progress>,
    telemetry: &Telemetry,
) -> Result<ServerReport, PipelineError>
where
    F: FnMut(&SessionInfo) -> SessionSink + Send + 'static,
{
    listener.set_nonblocking(true)?;
    let (waker, wake_rx) = polling::wake_pair()?;
    let waker = Arc::new(waker);
    let (job_tx, job_rx) = unbounded::<Job>();
    let (done_tx, done_rx) = unbounded::<BatchDone>();
    let mut pool = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let job_rx: Receiver<Job> = job_rx.clone();
        let done_tx: Sender<BatchDone> = done_tx.clone();
        let waker = Arc::clone(&waker);
        let worker = thread::Builder::new()
            .name(format!("session-worker-{w}"))
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let done = run_batch(job);
                    let delivered = done_tx.send(done).is_ok();
                    waker.wake();
                    if !delivered {
                        return; // loop gone
                    }
                }
            })
            .map_err(PipelineError::Io)?;
        pool.push(worker);
    }
    drop(job_rx);
    drop(done_tx);

    let listener_fd = polling::fd_of(listener);
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut reports: Vec<SessionReport> = Vec::new();
    let mut accept_error: Option<String> = None;
    let mut accepting = true;
    let mut next_id = 0u64;
    let mut peak = 0usize;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tags: Vec<PollTag> = Vec::new();

    loop {
        // Worker completions first: chains return to their sessions,
        // finished sessions close, capacity frees for the accept step.
        while let Ok(done) = done_rx.try_recv() {
            handle_done(done, &mut sessions, &mut reports, progress);
        }
        if shutdown.load(Ordering::Acquire) {
            accepting = false;
        }
        if !accepting && sessions.is_empty() {
            break;
        }
        let now = Instant::now();
        if let Some(limit) = cfg.idle_timeout {
            reap_idle(&mut sessions, now, limit);
        }
        // Dispatch: any session holding its chain and ready records
        // (or its end-of-session batch) goes to the pool.
        for (&sid, s) in &mut sessions {
            try_dispatch(sid, s, &job_tx);
        }
        // Sessions that failed dispatch fatally were closed in place.
        close_undispatchable(&mut sessions, &mut reports, progress);

        // Build the poll set: the waker always; the listener only
        // while a session slot is free (accept-time backpressure);
        // each live session socket with decode-ahead room.
        fds.clear();
        tags.clear();
        fds.push(PollFd::readable(wake_rx.fd()));
        tags.push(PollTag::Waker);
        if accepting && sessions.len() < cfg.capacity {
            fds.push(PollFd::readable(listener_fd));
            tags.push(PollTag::Listener);
        }
        for (&sid, s) in &sessions {
            if s.wants_read() {
                fds.push(PollFd::readable(s.fd));
                tags.push(PollTag::Session(sid));
            }
        }
        let timeout = cfg.idle_timeout.and_then(|limit| {
            sessions
                .values()
                .filter(|s| !s.read_done && s.assembler.end().is_none())
                .map(|s| (s.last_activity + limit).saturating_duration_since(now))
                .min()
        });
        if let Err(e) = polling::wait(&mut fds, timeout) {
            // poll(2) itself failing is unrecoverable for the loop.
            accept_error.get_or_insert(PipelineError::Io(e).to_string());
            break;
        }

        let now = Instant::now();
        for (fd, tag) in fds.iter().zip(&tags) {
            if !fd.ready {
                continue;
            }
            match tag {
                PollTag::Waker => wake_rx.drain(),
                PollTag::Listener => {
                    accept_burst(&mut AcceptCtx {
                        listener,
                        build,
                        make_sink: &mut make_sink,
                        cfg,
                        shutdown,
                        telemetry,
                        sessions: &mut sessions,
                        accepting: &mut accepting,
                        accept_error: &mut accept_error,
                        next_id: &mut next_id,
                        now,
                    });
                    peak = peak.max(sessions.len());
                }
                PollTag::Session(sid) => {
                    if let Some(s) = sessions.get_mut(sid) {
                        read_session(s, now);
                    }
                }
            }
        }
    }

    // Shutdown: close the job channel, let workers finish their
    // in-flight batches and exit. The loop only breaks once every
    // session has closed, so nothing is pending here on the normal
    // path (a poll failure is the exception — its sessions are lost).
    drop(job_tx);
    for worker in pool {
        let _ = worker.join();
    }
    reports.sort_by_key(|s| s.id);
    let mut aggregate = StreamStats::default();
    // Events come once from the shared ring (already interleaved across
    // sessions); only the per-session stage histograms need folding.
    let mut merged_telemetry = telemetry.snapshot();
    for s in &reports {
        aggregate.merge(&s.stats);
        merged_telemetry.merge_stages(&s.telemetry);
    }
    Ok(ServerReport {
        sessions: reports,
        aggregate,
        session_capacity: cfg.capacity,
        workers: cfg.workers,
        peak_sessions: peak,
        accept_error,
        telemetry: merged_telemetry,
    })
}

/// Everything the accept step needs, bundled to keep the call site
/// readable.
struct AcceptCtx<'a, F> {
    listener: &'a TcpListener,
    build: &'a mut (dyn FnMut(u64) -> Result<Pipeline, PipelineError> + Send),
    make_sink: &'a mut F,
    cfg: &'a LoopCfg,
    shutdown: &'a AtomicBool,
    telemetry: &'a Telemetry,
    sessions: &'a mut HashMap<u64, Session>,
    accepting: &'a mut bool,
    accept_error: &'a mut Option<String>,
    next_id: &'a mut u64,
    now: Instant,
}

/// Accepts as many queued connections as capacity allows. Transient
/// per-connection failures keep the loop serving; chain-construction
/// and fatal listener errors stop the acceptor (existing sessions
/// still drain).
fn accept_burst<F>(ctx: &mut AcceptCtx<'_, F>)
where
    F: FnMut(&SessionInfo) -> SessionSink + Send + 'static,
{
    loop {
        if ctx.sessions.len() >= ctx.cfg.capacity {
            return;
        }
        // Re-check the flag right before accepting so the shutdown
        // wake-up connection (or a client racing it) is not served.
        if ctx.shutdown.load(Ordering::Acquire) {
            *ctx.accepting = false;
            return;
        }
        match ctx.listener.accept() {
            Ok((stream, peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    // A socket we cannot poll is useless; treat it like
                    // a client that died during accept.
                    continue;
                }
                let _ = stream.set_nodelay(true);
                *ctx.next_id += 1;
                let id = *ctx.next_id;
                let info = SessionInfo {
                    id,
                    peer: peer.to_string(),
                };
                let sink = (ctx.make_sink)(&info);
                match (ctx.build)(id) {
                    Ok(chain) => {
                        let session =
                            open_session(info, stream, chain, sink, ctx.telemetry, ctx.now);
                        ctx.sessions.insert(id, session);
                    }
                    Err(e) => {
                        *ctx.accept_error = Some(e.to_string());
                        *ctx.accepting = false;
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            // Per-connection failures (a backlogged client resetting
            // before it was accepted, an interrupted syscall) are the
            // client's problem, not the fleet's: keep serving.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::Interrupted
                        | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => {
                *ctx.accept_error = Some(PipelineError::Io(e).to_string());
                *ctx.accepting = false;
                return;
            }
        }
    }
}

/// Builds the resident state for a freshly accepted session: chain
/// instantiated, telemetry forked, accept event emitted.
fn open_session(
    info: SessionInfo,
    stream: TcpStream,
    chain: Pipeline,
    sink: SessionSink,
    telemetry: &Telemetry,
    now: Instant,
) -> Session {
    let fork = telemetry.fork_stages();
    let mut ops = chain.into_ops();
    let names: Vec<String> = ops.iter().map(|op| op.name().to_string()).collect();
    let timers = fork.stage_timers(&names);
    let chain_events = fork.event_sink(info.id);
    if chain_events.enabled() {
        for op in &mut ops {
            op.attach_events(&chain_events);
        }
    }
    let stats: Vec<StageStats> = ops
        .iter()
        .zip(timers)
        .map(|(op, timer)| StageStats::with_timer(op.name(), timer))
        .collect();
    let events = fork.event_sink(info.id);
    events.emit(EventKind::SessionAccept, info.id);
    let fd = polling::fd_of(&stream);
    Session {
        info,
        stream,
        fd,
        assembler: RecordAssembler::new(),
        exec: Some(ExecState {
            ops,
            stats,
            totals: SinkTotals::default(),
            sink,
            events: chain_events,
        }),
        pending_finish: None,
        events,
        telemetry: fork,
        started: now,
        last_activity: now,
        busy: Duration::ZERO,
        read_done: false,
        finishing: false,
        error: None,
        keepalives_seen: 0,
    }
}

/// Drains one readable socket into its session's assembler, bounded by
/// [`READ_BURST`] (loop fairness) and [`BACKLOG_CAP`] (decode-ahead
/// backpressure). EOF and read errors end the wire; the records
/// already decoded still flow.
fn read_session(s: &mut Session, now: Instant) {
    let mut chunk = [0u8; READ_CHUNK];
    let mut total = 0usize;
    while s.wants_read() && total < READ_BURST {
        match s.stream.read(&mut chunk) {
            Ok(0) => {
                s.assembler.finish();
                s.read_done = true;
                return;
            }
            Ok(n) => {
                s.last_activity = now;
                total += n;
                s.assembler.feed(&chunk[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                s.assembler.fail(PipelineError::Io(e));
                s.read_done = true;
                return;
            }
        }
    }
}

/// Dispatches the session's next batch to the pool if its chain is
/// resident and work is ready. Wire faults discovered here (a corrupt
/// frame surfacing from the assembler) convert into a trailing repair
/// batch, after the cleanly decoded prefix has been dispatched.
fn try_dispatch(sid: u64, s: &mut Session, job_tx: &Sender<Job>) {
    if s.finishing || s.exec.is_none() {
        return;
    }
    let Some(batch) = next_batch(s) else {
        note_keepalives(s);
        return;
    };
    note_keepalives(s);
    let Some(exec) = s.exec.take() else {
        return; // unreachable: checked resident above
    };
    if batch.finish {
        s.finishing = true;
    }
    if let Err(send_failed) = job_tx.send(Job { sid, exec, batch }) {
        // Only possible if the whole pool died (a bug, not a load
        // condition): fail the session rather than wedging it open.
        let job = send_failed.0;
        s.exec = Some(job.exec);
        s.error
            .get_or_insert_with(|| "worker pool unavailable".to_string());
        s.read_done = true;
        s.finishing = true;
    }
}

/// Emits one `session_keepalive` event per keepalive sentinel newly
/// consumed by the assembler (they are decoded during batch building).
fn note_keepalives(s: &mut Session) {
    let seen = s.assembler.keepalives();
    while s.keepalives_seen < seen {
        s.keepalives_seen += 1;
        s.events
            .emit(EventKind::SessionKeepalive, s.keepalives_seen);
    }
}

/// Pulls the session's next batch out of its assembler: up to
/// [`BATCH_RECORDS`] ready records, a finish marker once the stream
/// has ended, or the pending repair batch after a fault. `None` means
/// nothing to do until more bytes (or the chain) arrive.
fn next_batch(s: &mut Session) -> Option<Batch> {
    if let Some(batch) = s.pending_finish.take() {
        return Some(batch);
    }
    let mut records = Vec::new();
    let mut finish = false;
    loop {
        if records.len() >= BATCH_RECORDS {
            break;
        }
        match s.assembler.next_ready() {
            Ok(Some(record)) => records.push(record),
            Ok(None) => {
                finish = s.assembler.end().is_some();
                break;
            }
            Err(e) => {
                // Poisoned wire (CRC mismatch, bad magic, read error):
                // the decoded prefix still flows through the chain,
                // then the synthesized repairs drain it — matching the
                // blocking driver's error ordering exactly.
                s.error.get_or_insert_with(|| e.to_string());
                s.read_done = true;
                let repair = Batch {
                    records: s.assembler.abort_repair(),
                    finish: true,
                    repair: true,
                };
                if records.is_empty() {
                    return Some(repair);
                }
                s.pending_finish = Some(repair);
                return Some(Batch {
                    records,
                    finish: false,
                    repair: false,
                });
            }
        }
    }
    if records.is_empty() && !finish {
        return None;
    }
    Some(Batch {
        records,
        finish,
        repair: false,
    })
}

/// Ends every session whose wire has been silent past `limit`:
/// `session_timeout` event, scope repair through its chain, and an
/// `idle timeout` session error. Sessions that already ended (or
/// stopped reading for any reason) are exempt.
fn reap_idle(sessions: &mut HashMap<u64, Session>, now: Instant, limit: Duration) {
    for (&sid, s) in sessions.iter_mut() {
        if s.read_done || s.assembler.end().is_some() || s.finishing {
            continue;
        }
        if now.saturating_duration_since(s.last_activity) < limit {
            continue;
        }
        s.events.emit(EventKind::SessionTimeout, sid);
        s.error
            .get_or_insert_with(|| format!("idle timeout: no wire activity for {limit:?}"));
        s.read_done = true;
        s.pending_finish = Some(Batch {
            records: s.assembler.abort_repair(),
            finish: true,
            repair: true,
        });
    }
}

/// Processes one worker completion: the chain returns to its session,
/// errors and finishes close it, otherwise it goes back to the poll
/// set for more records.
fn handle_done(
    done: BatchDone,
    sessions: &mut HashMap<u64, Session>,
    reports: &mut Vec<SessionReport>,
    progress: &Progress,
) {
    let Some(mut s) = sessions.remove(&done.sid) else {
        return; // unreachable: sessions only close through here
    };
    s.busy += done.busy;
    match done.exec {
        // The batch panicked: the chain and sink are gone; report the
        // session as failed with whatever the assembler knew.
        None => {
            s.error = done.error.or(s.error);
            s.read_done = true;
            reports.push(close_session(s, None));
            progress.bump();
        }
        Some(exec) => {
            if let Some(e) = done.error {
                // The session's own chain or sink failed: it is no
                // longer trustworthy, so end without pushing repairs
                // through it (counting them in the report's end state,
                // like the blocking driver).
                s.error = Some(e);
                s.read_done = true;
                let _ = s.assembler.abort_repair();
                reports.push(close_session(s, Some(exec)));
                progress.bump();
            } else if done.finished {
                reports.push(close_session(s, Some(exec)));
                progress.bump();
            } else {
                s.exec = Some(exec);
                sessions.insert(done.sid, s);
            }
        }
    }
}

/// Closes sessions that a failed dispatch marked dead while their
/// chain is still resident (worker pool gone — a bug path, kept
/// non-wedging).
fn close_undispatchable(
    sessions: &mut HashMap<u64, Session>,
    reports: &mut Vec<SessionReport>,
    progress: &Progress,
) {
    let dead: Vec<u64> = sessions
        .iter()
        .filter(|(_, s)| s.finishing && s.error.is_some() && s.exec.is_some())
        .map(|(&sid, _)| sid)
        .collect();
    for sid in dead {
        if let Some(mut s) = sessions.remove(&sid) {
            let exec = s.exec.take();
            let _ = s.assembler.abort_repair();
            reports.push(close_session(s, exec));
            progress.bump();
        }
    }
}

/// Builds the session's final report and emits its closing event.
fn close_session(s: Session, exec: Option<ExecState>) -> SessionReport {
    let received = s.assembler.received();
    let end = s
        .assembler
        .end()
        .unwrap_or(StreamEnd::Unclean { repaired_scopes: 0 });
    if s.error.is_some() {
        s.events.emit(EventKind::SessionError, s.info.id);
    } else {
        s.events.emit(EventKind::SessionDrain, received);
    }
    let stats = exec.map_or_else(StreamStats::default, |exec| StreamStats {
        stages: exec.stats,
        source_records: received,
        sink_records: exec.totals.records,
        sink_bytes: exec.totals.bytes,
    });
    let duration = s.started.elapsed();
    SessionReport {
        id: s.info.id,
        peer: s.info.peer,
        end,
        received,
        wire_bytes: s.assembler.wire_bytes(),
        keepalives: s.assembler.keepalives(),
        stats,
        wire_version: s.assembler.wire_version(),
        error: s.error,
        duration,
        idle: duration.saturating_sub(s.busy),
        telemetry: s.telemetry.snapshot_for_lane(s.info.id),
    }
}

/// Executes one batch on a worker thread: scope events and
/// `feed_chain` per record, then `flush_chain` on finish — the same
/// fused step as the streaming driver and the sharded runtime. Repair
/// batches feed error-tolerantly and always flush; a panicking
/// operator or sink is caught so the pool thread (and the session's
/// report) survive.
fn run_batch(job: Job) -> BatchDone {
    let Job {
        sid,
        mut exec,
        batch,
    } = job;
    let started = Instant::now();
    let repair = batch.repair;
    let finish = batch.finish;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut error: Option<String> = None;
        let mut broken = false;
        for record in batch.records {
            if exec.events.enabled() {
                emit_scope_event(&exec.events, &record);
            }
            if let Err(e) = feed_chain(
                &mut exec.ops,
                &mut exec.stats,
                record,
                &mut exec.totals,
                exec.sink.as_mut(),
            ) {
                // Chain/sink failure: fatal for the session on the
                // normal path, tolerated on the repair drain.
                if !repair {
                    error = Some(e.to_string());
                }
                broken = true;
                break;
            }
        }
        if finish && (!broken || repair) {
            if let Err(e) = flush_chain(
                &mut exec.ops,
                &mut exec.stats,
                &mut exec.totals,
                exec.sink.as_mut(),
            ) {
                if !repair && error.is_none() {
                    error = Some(e.to_string());
                }
            }
        }
        error
    }));
    let busy = started.elapsed();
    match outcome {
        Ok(error) => BatchDone {
            sid,
            exec: Some(exec),
            error,
            finished: finish,
            busy,
        },
        Err(panic) => {
            let message = format!("session panicked: {}", panic_message(&panic));
            // The chain may be mid-unwind-poisoned; dropping it can
            // itself panic, which must not take the worker down.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(exec)));
            BatchDone {
                sid,
                exec: None,
                error: Some(message),
                finished: true,
                busy,
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}
#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::codec::{encode_frame, write_eos, write_record};
    use crate::net::send_all;
    use crate::operator::SharedSink;
    use crate::ops::{MapPayload, Passthrough};
    use crate::record::{Payload, Record, RecordKind};
    use std::io::Write;
    use std::sync::Mutex;

    fn scoped_records(tag: f64, n: usize) -> Vec<Record> {
        let mut v = vec![Record::open_scope(1, vec![])];
        for i in 0..n {
            v.push(Record::data(0, Payload::f64(vec![tag, i as f64])).with_seq(i as u64));
        }
        v.push(Record::close_scope(1));
        v
    }

    fn doubling_chain() -> Pipeline {
        let mut p = Pipeline::new();
        p.add(MapPayload::new("double", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x *= 2.0);
        }));
        p
    }

    /// Per-session sink registry: (session id, its collected output).
    type SessionOutputs = Arc<Mutex<Vec<(u64, SharedSink)>>>;

    /// Starts a server whose per-session sinks land in a shared map of
    /// (session id → records).
    fn start_collecting(
        server: PipelineServer,
        listener: TcpListener,
    ) -> (ServerHandle, SessionOutputs) {
        let outputs: SessionOutputs = Arc::new(Mutex::new(Vec::new()));
        let registry = Arc::clone(&outputs);
        let handle = server
            .start(listener, move |info| {
                let sink = SharedSink::new();
                registry.lock().unwrap().push((info.id, sink.clone()));
                Box::new(sink)
            })
            .unwrap();
        (handle, outputs)
    }

    #[test]
    fn four_concurrent_sessions_each_match_single_lane() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(4);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let barrier = Arc::new(std::sync::Barrier::new(4));
        let clients: Vec<_> = (0..4u64)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let records = scoped_records(c as f64, 20 + c as usize);
                    // All four connect before any sends: genuinely
                    // concurrent sessions.
                    let mut out = crate::net::StreamOut::connect(addr).unwrap();
                    barrier.wait();
                    let mut devnull = crate::operator::NullSink;
                    for r in &records {
                        crate::operator::Operator::on_record(&mut out, r.clone(), &mut devnull)
                            .unwrap();
                    }
                    crate::operator::Operator::on_eos(&mut out, &mut devnull).unwrap();
                    records
                })
            })
            .collect();
        let sent: Vec<Vec<Record>> = clients.into_iter().map(|c| c.join().unwrap()).collect();

        handle.wait_for_completed(4);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 4);
        assert_eq!(report.clean_sessions(), 4);

        // Each session's output is byte-identical to running its input
        // through the single-lane streaming driver.
        let outputs = outputs.lock().unwrap();
        for (id, sink) in outputs.iter() {
            let got = sink.take();
            let matched = sent.iter().any(|records| {
                let mut expected = Vec::new();
                doubling_chain()
                    .run_streaming(records.clone().into_iter(), &mut expected)
                    .unwrap();
                expected == got
            });
            assert!(matched, "session {id} output matches no client's stream");
        }
        // Aggregate totals equal the sum of the per-session stats.
        let total_in: u64 = report.sessions.iter().map(|s| s.received).sum();
        assert_eq!(report.aggregate.source_records, total_in);
        assert_eq!(total_in as usize, sent.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn disconnect_repairs_one_session_without_disturbing_others() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(3);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        // One crashing client: opens a scope, sends data, vanishes.
        let crasher = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            write_record(&mut w, &Record::open_scope(9, vec![])).unwrap();
            write_record(&mut w, &Record::data(0, Payload::f64(vec![5.0]))).unwrap();
            w.flush().unwrap();
            // Dropped without CloseScope or sentinel: simulated crash.
        });
        // Two healthy clients.
        let healthy: Vec<_> = (0..2u64)
            .map(|c| thread::spawn(move || send_all(addr, &scoped_records(c as f64, 10)).unwrap()))
            .collect();
        crasher.join().unwrap();
        for h in healthy {
            h.join().unwrap();
        }

        handle.wait_for_completed(3);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.clean_sessions(), 2);
        assert_eq!(report.repaired_sessions(), 1);
        let unclean: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(unclean.len(), 1);
        assert_eq!(unclean[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert!(unclean[0].error.is_none(), "a crash is repair, not error");

        // The crashed session's output ends with the BadCloseScope that
        // traversed its chain; every session's output is balanced.
        for (id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            crate::scope::validate_scopes(&got).unwrap();
            if *id == unclean[0].id {
                assert_eq!(got.last().unwrap().kind, RecordKind::BadCloseScope);
            }
        }
    }

    #[test]
    fn corrupted_frame_aborts_only_that_session_with_repair() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        // Corrupt client: valid open + data, then a frame whose payload
        // byte is flipped (CRC mismatch), then more valid traffic that
        // must never be trusted.
        let corrupt = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            write_record(&mut w, &Record::open_scope(3, vec![])).unwrap();
            write_record(&mut w, &Record::data(0, Payload::f64(vec![1.0]))).unwrap();
            let mut frame = encode_frame(&Record::data(0, Payload::f64(vec![2.0])));
            let mid = crate::codec::HEADER_LEN + 2;
            frame[mid] ^= 0xFF; // payload corruption: CRC now fails
            w.write_all(&frame).unwrap();
            write_record(&mut w, &Record::close_scope(3)).unwrap();
            write_eos(&mut w).unwrap();
            w.flush().unwrap();
        });
        let healthy = thread::spawn(move || send_all(addr, &scoped_records(7.0, 12)).unwrap());
        corrupt.join().unwrap();
        healthy.join().unwrap();

        handle.wait_for_completed(2);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.clean_sessions(), 1);
        let bad: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        let err = bad[0].error.as_deref().unwrap();
        assert!(
            err.contains("crc"),
            "error should name the CRC failure: {err}"
        );

        for (id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            crate::scope::validate_scopes(&got).unwrap();
            if *id == bad[0].id {
                // open + data + synthesized BadCloseScope; nothing after
                // the corruption was trusted.
                assert_eq!(got.len(), 3);
                assert_eq!(got[2].kind, RecordKind::BadCloseScope);
            } else {
                assert_eq!(got.len(), 12 + 2);
            }
        }
    }

    #[test]
    fn client_dying_mid_frame_is_repaired_in_place() {
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let truncator = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            write_record(&mut w, &Record::open_scope(2, vec![])).unwrap();
            write_record(&mut w, &Record::data(0, Payload::f64(vec![4.0]))).unwrap();
            // Half a frame, then death: the reader sees a truncated
            // stream, not a codec error.
            let frame = encode_frame(&Record::data(0, Payload::f64(vec![8.0])));
            w.write_all(&frame[..frame.len() / 2]).unwrap();
            w.flush().unwrap();
        });
        let healthy = thread::spawn(move || send_all(addr, &scoped_records(1.0, 5)).unwrap());
        truncator.join().unwrap();
        healthy.join().unwrap();

        handle.wait_for_completed(2);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 2);
        let bad: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert_eq!(bad[0].received, 2);
        for (_id, sink) in outputs.lock().unwrap().iter() {
            crate::scope::validate_scopes(&sink.take()).unwrap();
        }
    }

    #[test]
    fn session_limit_applies_accept_time_backpressure() {
        // One slot, slow sessions: a second client's traffic is not
        // served until the first session finishes, but both complete.
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let clients: Vec<_> = (0..3u64)
            .map(|c| thread::spawn(move || send_all(addr, &scoped_records(c as f64, 50)).unwrap()))
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        handle.wait_for_completed(3);
        assert_eq!(handle.sessions_completed(), 3);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.clean_sessions(), 3);
        // Serialized through one slot: session ids are still 1..=3.
        let ids: Vec<u64> = report.sessions.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn panicking_session_is_reported_and_does_not_wedge_the_pool() {
        // A user-supplied sink that panics mid-session must neither
        // deadlock wait_for_completed nor vanish from the report, and
        // the worker slot must survive to serve the next client.
        struct PanicSink;
        impl Sink for PanicSink {
            fn push(&mut self, _record: Record) -> Result<(), PipelineError> {
                panic!("sink exploded");
            }
        }
        let healthy_out = SharedSink::new();
        let registered = healthy_out.clone();
        let first = Arc::new(AtomicBool::new(true));
        let mut server = PipelineServer::from_pipeline(&Pipeline::new()).unwrap();
        server.set_max_sessions(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = server
            .start(listener, move |_info| {
                if first.swap(false, Ordering::SeqCst) {
                    Box::new(PanicSink)
                } else {
                    Box::new(registered.clone())
                }
            })
            .unwrap();
        let addr = handle.local_addr();

        send_all(addr, &scoped_records(1.0, 3)).unwrap();
        handle.wait_for_completed(1); // deadlocks here if panics leak
        send_all(addr, &scoped_records(2.0, 3)).unwrap();
        handle.wait_for_completed(2);

        let report = handle.shutdown().unwrap();
        assert!(report.accept_error.is_none());
        assert_eq!(report.sessions.len(), 2);
        let err = report.sessions[0].error.as_deref().unwrap();
        assert!(err.contains("panicked"), "got: {err}");
        assert!(report.sessions[1].is_clean());
        assert_eq!(healthy_out.take().len(), 5);
    }

    #[test]
    fn sessions_carry_telemetry_timing_and_merged_snapshot() {
        let mut pipeline = doubling_chain();
        pipeline.set_telemetry(crate::telemetry::TelemetryConfig::Full);
        let mut server = PipelineServer::from_pipeline(&pipeline).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        send_all(addr, &scoped_records(1.0, 6)).unwrap();
        send_all(addr, &scoped_records(2.0, 9)).unwrap();
        handle.wait_for_completed(2);

        // Live view while the server still runs: the shared event ring
        // already holds both sessions' accept/drain events.
        let live = handle.telemetry_snapshot();
        let accepts = live
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SessionAccept)
            .count();
        assert_eq!(accepts, 2);

        let report = handle.shutdown().unwrap();
        assert_eq!(report.clean_sessions(), 2);
        for s in &report.sessions {
            // Stage timers are per-session: the one "double" stage saw
            // exactly this session's records (data + scope framing).
            assert_eq!(s.telemetry.stages.len(), 1);
            assert_eq!(s.telemetry.stages[0].name, "double");
            assert_eq!(s.telemetry.stages[0].latency.count, s.received);
            // Events are lane-filtered to this session.
            assert!(s.telemetry.events.iter().all(|e| e.lane == s.id));
            assert!(s
                .telemetry
                .events
                .iter()
                .any(|e| e.kind == EventKind::SessionAccept));
            assert!(s
                .telemetry
                .events
                .iter()
                .any(|e| e.kind == EventKind::SessionDrain));
            assert!(s
                .telemetry
                .events
                .iter()
                .any(|e| e.kind == EventKind::ScopeOpen));
            // Wall-clock accounting: idle (wire waits) is part of the
            // session's total duration.
            assert!(s.duration >= s.idle);
            assert!(s.duration > Duration::ZERO);
        }
        // Merged snapshot: histograms fold bucket-wise across sessions,
        // events appear once.
        let merged = &report.telemetry;
        assert_eq!(merged.stages.len(), 1);
        let total: u64 = report.sessions.iter().map(|s| s.received).sum();
        assert_eq!(merged.stages[0].latency.count, total);
        let merged_accepts = merged
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SessionAccept)
            .count();
        assert_eq!(merged_accepts, 2);
    }

    #[test]
    fn telemetry_off_reports_empty_snapshots() {
        let server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();
        send_all(addr, &scoped_records(1.0, 4)).unwrap();
        handle.wait_for_completed(1);
        let report = handle.shutdown().unwrap();
        assert!(report.sessions[0].telemetry.stages.is_empty());
        assert!(report.sessions[0].telemetry.events.is_empty());
        assert!(report.telemetry.events.is_empty());
        // Duration/idle accounting is unconditional.
        assert!(report.sessions[0].duration >= report.sessions[0].idle);
    }

    #[test]
    fn shutdown_with_no_sessions_is_immediate_and_empty() {
        let server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = server
            .start(listener, |_info| Box::new(crate::operator::NullSink))
            .unwrap();
        let report = handle.shutdown().unwrap();
        assert!(report.sessions.is_empty());
        assert_eq!(report.aggregate, StreamStats::default());
    }

    #[test]
    fn factory_route_builds_one_chain_per_session() {
        let built = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&built);
        let mut server = PipelineServer::from_factory(move |_id| {
            counter.fetch_add(1, Ordering::SeqCst);
            let mut p = Pipeline::new();
            p.add(Passthrough);
            p
        });
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();
        for c in 0..3u64 {
            send_all(addr, &scoped_records(c as f64, 3)).unwrap();
        }
        handle.wait_for_completed(3);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(built.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn non_cloneable_chain_is_rejected_up_front() {
        struct Opaque;
        impl crate::operator::Operator for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn on_record(
                &mut self,
                record: Record,
                out: &mut dyn Sink,
            ) -> Result<(), PipelineError> {
                out.push(record)
            }
        }
        let mut p = Pipeline::new();
        p.add(Opaque);
        let err = PipelineServer::from_pipeline(&p).unwrap_err();
        assert!(err.to_string().contains("opaque"));
    }

    #[test]
    fn wire_bytes_are_session_tagged() {
        let server = PipelineServer::from_pipeline(&Pipeline::new()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, _outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();
        let records = scoped_records(0.0, 4);
        let expected: u64 = records
            .iter()
            .map(|r| encode_frame(r).len() as u64)
            .sum::<u64>()
            + 4; // EOS sentinel
        send_all(addr, &records).unwrap();
        handle.wait_for_completed(1);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.sessions[0].wire_bytes, expected);
        assert_eq!(report.sessions[0].received as usize, records.len());
        assert_eq!(report.sessions[0].wire_version, Some(crate::codec::VERSION));
    }

    #[test]
    fn sessions_report_their_negotiated_wire_version() {
        use crate::codec::{SampleEncoding, WireFormat};
        use crate::net::send_all_with;
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        send_all(addr, &scoped_records(1.0, 8)).unwrap();
        handle.wait_for_completed(1);
        send_all_with(
            addr,
            &scoped_records(2.0, 8),
            WireFormat::V2(SampleEncoding::F64),
        )
        .unwrap();
        handle.wait_for_completed(2);

        let report = handle.shutdown().unwrap();
        assert_eq!(report.clean_sessions(), 2);
        let mut versions: Vec<Option<u8>> =
            report.sessions.iter().map(|s| s.wire_version).collect();
        versions.sort();
        assert_eq!(
            versions,
            vec![Some(crate::codec::VERSION), Some(crate::codec::VERSION_V2)]
        );
        // Both sessions produced the same doubled output regardless of
        // the wire format that carried them in.
        for (_id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            assert_eq!(got.len(), 8 + 2);
            crate::scope::validate_scopes(&got).unwrap();
        }
    }

    #[test]
    fn corrupted_v2_frame_aborts_only_that_session_with_repair() {
        use crate::codec::{encode_frame_with, SampleEncoding, WireFormat};
        let fmt = WireFormat::V2(SampleEncoding::F64);
        let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        server.set_max_sessions(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        let corrupt = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            w.write_all(&encode_frame_with(&Record::open_scope(3, vec![]), fmt))
                .unwrap();
            w.write_all(&encode_frame_with(
                &Record::data(0, Payload::f64(vec![1.0])),
                fmt,
            ))
            .unwrap();
            // Flip a CRC byte: frame length stays intact, checksum fails.
            let mut frame = encode_frame_with(&Record::data(0, Payload::f64(vec![2.0])), fmt);
            let last = frame.len() - 1;
            frame[last] ^= 0xFF;
            w.write_all(&frame).unwrap();
            w.write_all(&encode_frame_with(&Record::close_scope(3), fmt))
                .unwrap();
            write_eos(&mut w).unwrap();
            w.flush().unwrap();
        });
        let healthy = thread::spawn(move || send_all(addr, &scoped_records(7.0, 12)).unwrap());
        corrupt.join().unwrap();
        healthy.join().unwrap();

        handle.wait_for_completed(2);
        let report = handle.shutdown().unwrap();
        assert_eq!(report.clean_sessions(), 1);
        let bad: Vec<_> = report.sessions.iter().filter(|s| !s.is_clean()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert_eq!(bad[0].wire_version, Some(crate::codec::VERSION_V2));
        let err = bad[0].error.as_deref().unwrap();
        assert!(
            err.contains("crc"),
            "error should name the CRC failure: {err}"
        );

        for (id, sink) in outputs.lock().unwrap().iter() {
            let got = sink.take();
            crate::scope::validate_scopes(&got).unwrap();
            if *id == bad[0].id {
                assert_eq!(got.len(), 3);
                assert_eq!(got[2].kind, RecordKind::BadCloseScope);
            } else {
                assert_eq!(got.len(), 12 + 2);
            }
        }
    }

    #[test]
    fn client_dying_mid_v2_frame_is_repaired_in_place() {
        use crate::codec::{encode_frame_with, SampleEncoding, WireFormat};
        let fmt = WireFormat::V2(SampleEncoding::I16);
        let server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (handle, outputs) = start_collecting(server, listener);
        let addr = handle.local_addr();

        thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = std::io::BufWriter::new(stream);
            w.write_all(&encode_frame_with(&Record::open_scope(2, vec![]), fmt))
                .unwrap();
            let frame = encode_frame_with(&Record::data(0, Payload::f64(vec![8.0; 64])), fmt);
            w.write_all(&frame[..frame.len() / 2]).unwrap();
            w.flush().unwrap();
            // Dropped mid-frame: simulated crash.
        })
        .join()
        .unwrap();

        handle.wait_for_completed(1);
        let report = handle.shutdown().unwrap();
        let s = &report.sessions[0];
        assert_eq!(s.end, StreamEnd::Unclean { repaired_scopes: 1 });
        assert!(s.error.is_none(), "truncation is repair, not error");
        assert_eq!(s.wire_version, Some(crate::codec::VERSION_V2));
        let (_, sink) = &outputs.lock().unwrap()[0];
        let got = sink.take();
        crate::scope::validate_scopes(&got).unwrap();
        assert_eq!(got.last().unwrap().kind, RecordKind::BadCloseScope);
    }
}
