//! Scope-sharded data-parallel pipeline execution.
//!
//! The fused streaming driver ([`Pipeline::run_streaming`]) is
//! single-lane: one core drives every record depth-first through the
//! chain. The threaded runner adds pipeline-parallelism (one thread per
//! stage) but throughput stays capped by the slowest stage. Archive
//! workloads — thousands of clips flowing through the Figure 5 graph —
//! are embarrassingly parallel *across* clips, and the paper's scope
//! discipline is exactly the boundary that makes splitting them safe:
//! "a data stream scope \[is\] a sequence of records that share some
//! contextual meaning, such as having been produced from the same
//! acoustic clip" (paper §2).
//!
//! [`ShardedPipeline`] turns that discipline into a sharding key:
//!
//! 1. **Splitter** — pulls records from the [`Source`], tracking scope
//!    state with [`ScopeTracker`] semantics. A *unit* is a maximal
//!    top-level scope subtree: everything from an `OpenScope` at depth
//!    0 to the close that returns the stream to depth 0, or a single
//!    record that arrives outside any scope. Units are assigned to
//!    workers round-robin (unit *k* → worker *k* mod *N*), so an
//!    ensemble's or clip's records are never interleaved across
//!    shards.
//! 2. **Workers** — *N* threads, each driving its own clone of the
//!    operator chain ([`Pipeline::clone_chain`]) over a bounded input
//!    queue. A full queue blocks the splitter — backpressure, not
//!    buffering — so peak memory per shard is the same constant as the
//!    single-lane driver's.
//! 3. **Merge** — because unit *k* lives on worker *k* mod *N* and each
//!    worker emits its units in ascending order, draining the worker
//!    output queues round-robin reproduces the single-lane output order
//!    exactly, with no reordering buffer at all. End-of-stream flushes
//!    (`on_eos`) are emitted after every unit, in worker order.
//!
//! # Determinism contract
//!
//! Output is **byte-identical** to [`Pipeline::run_streaming`] when the
//! chain is *scope-local*: every operator's observable state resets at
//! top-level scope boundaries (equivalently: running two balanced
//! top-level subtrees through one chain equals running each through a
//! fresh chain), and `on_eos` emits nothing after balanced input. The
//! Figure 5 operators satisfy this — `saxanomaly`, `trigger`, `cutter`,
//! `cutout` and `rec2vect` all reset at each clip's `OpenScope` —
//! as do stateless operators trivially. Operators with cross-scope
//! state (a global deduplicator, say) still run, but each shard sees
//! only its own units.
//!
//! Errors are also deterministic: the merge visits units in stream
//! order, so the error returned is the one a single-lane run would have
//! hit first, and the records delivered to the sink before it are the
//! same.
//!
//! # Example
//!
//! ```
//! use dynamic_river::prelude::*;
//!
//! // Two clips, each a top-level scope; double every sample.
//! let mut records = Vec::new();
//! for clip in 0..2 {
//!     records.push(Record::open_scope(7, vec![]));
//!     records.push(Record::data(0, Payload::f64(vec![clip as f64])));
//!     records.push(Record::close_scope(7));
//! }
//! let mut p = Pipeline::new();
//! p.add(MapPayload::new("double", |v: &mut [f64]| {
//!     v.iter_mut().for_each(|x| *x *= 2.0);
//! }));
//! let mut single = Vec::new();
//! p.run_streaming(records.clone().into_iter(), &mut single).unwrap();
//! let mut sharded = Vec::new();
//! p.run_sharded(records.into_iter(), &mut sharded, 2).unwrap();
//! assert_eq!(single, sharded);
//! ```
//!
//! [`Pipeline::run_streaming`]: crate::pipeline::Pipeline::run_streaming

// Library code in this module must surface failures as errors, never
// panics; unwraps are confined to the test module below.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::PipelineError;
use crate::operator::{Operator, Sink};
use crate::pipeline::{
    emit_scope_event, feed_chain, flush_chain, Pipeline, SinkTotals, StageStats, StreamStats,
};
use crate::record::Record;
use crate::scope::ScopeTracker;
use crate::source::Source;
use crate::telemetry::{EventKind, EventSink, Snapshot, StageTimer, Telemetry, TelemetryConfig};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::Arc;
use std::thread;

/// Item flowing from the splitter to a worker.
enum ShardIn {
    /// One record of the worker's current unit.
    Rec(Record),
    /// The worker's current unit is complete.
    UnitEnd,
    /// The run is aborting (source error or a failed sibling): skip the
    /// end-of-stream flush and report statistics immediately.
    Abort,
}

/// Item flowing from a worker to the merge.
enum ShardOut {
    /// An output record of the worker's current unit.
    Rec(Record),
    /// The worker's current unit produced all its output.
    UnitEnd,
    /// The worker received end-of-stream; flush output follows.
    Eos,
    /// The worker finished; its per-shard statistics.
    Done(Box<StreamStats>),
    /// The worker's chain failed.
    Failed(PipelineError),
}

/// Forwards chain output into the worker's output queue.
struct WorkerSink<'a> {
    tx: &'a Sender<ShardOut>,
}

impl Sink for WorkerSink<'_> {
    fn push(&mut self, record: Record) -> Result<(), PipelineError> {
        self.tx
            .send(ShardOut::Rec(record))
            .map_err(|_| PipelineError::Disconnected("shard merge gone".into()))
    }
}

/// A data-parallel pipeline: one cloned operator chain per worker,
/// scope-aware splitting, deterministic ordered merge.
///
/// Build one with [`from_pipeline`](Self::from_pipeline) (clones an
/// existing chain) or [`from_factory`](Self::from_factory) (builds each
/// worker's chain from a closure — the route for chains whose operators
/// do not implement [`Operator::clone_op`]), then call
/// [`run`](Self::run). [`Pipeline::run_sharded`] wraps the whole
/// sequence for the common case.
pub struct ShardedPipeline {
    chains: Vec<Pipeline>,
    queue_capacity: usize,
    telemetry: Telemetry,
}

impl std::fmt::Debug for ShardedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPipeline")
            .field("workers", &self.chains.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("telemetry", &self.telemetry.config())
            .finish()
    }
}

impl ShardedPipeline {
    /// Builds a sharded runtime with `workers` clones of `pipeline`'s
    /// operator chain. The queue capacity is taken from the pipeline's
    /// [`channel_capacity`](Pipeline::channel_capacity).
    ///
    /// # Errors
    ///
    /// Returns an operator error naming the first operator that does
    /// not support duplication ([`Operator::clone_op`]).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn from_pipeline(pipeline: &Pipeline, workers: usize) -> Result<Self, PipelineError> {
        assert!(workers > 0, "workers must be non-zero");
        // Pre-flight: a chain the analyzer can prove broken — including
        // any operator without `clone_op` support — is refused here,
        // with the offending operator named, instead of failing at
        // shard-spawn or mid-stream.
        pipeline.preflight(true)?;
        let mut chains = Vec::with_capacity(workers);
        for _ in 0..workers {
            chains.push(pipeline.clone_chain()?);
        }
        Ok(ShardedPipeline {
            chains,
            queue_capacity: pipeline.channel_capacity(),
            // Share the source pipeline's registry: every worker records
            // into the same per-stage histograms, so the sharded
            // snapshot's totals equal a single-lane run's.
            telemetry: pipeline.telemetry(),
        })
    }

    /// Builds a sharded runtime whose worker chains come from a
    /// factory; `build(w)` is called once per worker index.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn from_factory(workers: usize, mut build: impl FnMut(usize) -> Pipeline) -> Self {
        assert!(workers > 0, "workers must be non-zero");
        let chains: Vec<Pipeline> = (0..workers).map(&mut build).collect();
        let queue_capacity = chains.first().map_or(
            crate::pipeline::DEFAULT_CHANNEL_CAPACITY,
            Pipeline::channel_capacity,
        );
        ShardedPipeline {
            chains,
            queue_capacity,
            telemetry: Telemetry::off(),
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.chains.len()
    }

    /// Sets the bounded-queue capacity between splitter, workers and
    /// merge (records per queue). Capacity 0 is a rendezvous queue.
    pub fn set_queue_capacity(&mut self, capacity: usize) -> &mut Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enables telemetry at `config`, replacing any previous registry
    /// (including one inherited from
    /// [`from_pipeline`](Self::from_pipeline)). All workers record into
    /// the shared registry: histograms aggregate across shards, events
    /// carry each worker's lane (`1 + worker index`; the splitter and
    /// merge use lane 0).
    pub fn set_telemetry(&mut self, config: TelemetryConfig) -> &mut Self {
        self.telemetry = Telemetry::new(config);
        self
    }

    /// Shares an existing [`Telemetry`] registry with this runtime.
    pub fn set_telemetry_handle(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// A clone of the runtime's [`Telemetry`] handle. Keep it before
    /// the consuming [`run`](Self::run), then snapshot after.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// A point-in-time [`Snapshot`] aggregated across all workers.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Runs the sharded pipeline: splits `source` into top-level-scope
    /// units, fans them out to the worker chains, and merges the output
    /// into `sink` in deterministic stream order. Returns the
    /// aggregated per-stage statistics ([`StreamStats::merge`]);
    /// `max_peak_burst` is the worst single shard's burst, so a
    /// constant bound per shard stays a constant bound for the run.
    ///
    /// # Errors
    ///
    /// Returns the first source, operator or sink error in stream
    /// order.
    pub fn run(
        self,
        source: impl Source + Send,
        sink: &mut dyn Sink,
    ) -> Result<StreamStats, PipelineError> {
        // Factory-built chains (`from_factory`) have not been through a
        // constructor pre-flight; verify every worker chain before any
        // thread spawns. Shardability is not re-probed here — each
        // worker already has its own chain instance.
        for chain in &self.chains {
            chain.preflight(false)?;
        }
        let capacity = self.queue_capacity;
        let telemetry = self.telemetry.clone();
        thread::scope(|scope| {
            let mut in_txs = Vec::with_capacity(self.chains.len());
            let mut out_rxs = Vec::with_capacity(self.chains.len());
            for (w, chain) in self.chains.into_iter().enumerate() {
                let (in_tx, in_rx) = bounded::<ShardIn>(capacity);
                let (out_tx, out_rx) = bounded::<ShardOut>(capacity);
                // All workers fetch the same per-stage timers (matched
                // by name), so their latencies aggregate lock-free into
                // one histogram per stage.
                let names: Vec<String> = chain.names().iter().map(ToString::to_string).collect();
                let timers = telemetry.stage_timers(&names);
                let events = telemetry.event_sink(w as u64 + 1);
                let ops = chain.into_ops();
                scope.spawn(move || run_worker(ops, &in_rx, &out_tx, timers, &events));
                in_txs.push(in_tx);
                out_rxs.push(out_rx);
            }
            let splitter_events = telemetry.event_sink(0);
            let splitter = scope.spawn(move || run_splitter(source, &in_txs, &splitter_events));
            let merge_events = telemetry.event_sink(0);
            let merged = run_merge(&out_rxs, sink, &merge_events);
            // The merge consumed every worker's Done/Failed (or errored
            // and dropped the receivers), so the splitter has either
            // finished or will fail its next send; join cannot hang.
            drop(out_rxs);
            let (source_records, source_error) = match splitter.join() {
                Ok(result) => result,
                // The splitter only panics on a bug; re-raise it intact.
                Err(panic) => std::panic::resume_unwind(panic),
            };
            let mut stats = merged?;
            if let Some(e) = source_error {
                return Err(e);
            }
            stats.source_records = source_records;
            Ok(stats)
        })
    }
}

/// Sends into a worker queue, surfacing backpressure as telemetry:
/// when event tracing is on and the queue is full, `StallEnter`/
/// `StallExit` bracket the blocking send (subject: the worker index).
/// Returns `false` when the worker is gone.
fn send_in(tx: &Sender<ShardIn>, msg: ShardIn, events: &EventSink, shard: u64) -> bool {
    if !events.enabled() {
        return tx.send(msg).is_ok();
    }
    match tx.try_send(msg) {
        Ok(()) => true,
        Err(TrySendError::Full(msg)) => {
            events.emit(EventKind::StallEnter, shard);
            let ok = tx.send(msg).is_ok();
            events.emit(EventKind::StallExit, shard);
            ok
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// Splitter: pulls the source, carves the stream into top-level-scope
/// units, and deals them round-robin. Returns the pull count and any
/// source error.
fn run_splitter(
    mut source: impl Source,
    txs: &[Sender<ShardIn>],
    events: &EventSink,
) -> (u64, Option<PipelineError>) {
    let workers = txs.len() as u64;
    let mut tracker = ScopeTracker::new();
    let mut unit = 0u64;
    let mut unit_open = false;
    let mut pulled = 0u64;
    loop {
        match source.next_record() {
            Ok(Some(record)) => {
                pulled += 1;
                // Scope-aware unit tracking. A violation (stray close at
                // depth 0) leaves the tracker balanced, so the record
                // simply stands as its own unit — the splitter never
                // rejects a stream the single-lane driver would accept.
                let _ = tracker.observe(&record);
                if events.enabled() {
                    // Scope events are emitted where source records
                    // enter the run — here, as the single-lane driver
                    // does in `run_streaming` — so the event multiset
                    // matches across runners.
                    emit_scope_event(events, &record);
                }
                let shard = (unit % workers) as usize;
                if !send_in(&txs[shard], ShardIn::Rec(record), events, shard as u64) {
                    // The worker failed; its error reaches the caller
                    // through the merge. Stop feeding everyone.
                    abort_all(txs);
                    return (pulled, None);
                }
                unit_open = true;
                if tracker.is_balanced() {
                    if !send_in(&txs[shard], ShardIn::UnitEnd, events, shard as u64) {
                        abort_all(txs);
                        return (pulled, None);
                    }
                    events.emit(EventKind::ShardUnitDispatched, unit);
                    unit += 1;
                    unit_open = false;
                }
            }
            Ok(None) => {
                if unit_open {
                    // Unbalanced tail (upstream died mid-scope): it is
                    // the final unit; the owning worker's scope-repair
                    // and `on_eos` flush handle it exactly as the
                    // single-lane driver would at its end of stream.
                    let shard = (unit % workers) as usize;
                    let _ = send_in(&txs[shard], ShardIn::UnitEnd, events, shard as u64);
                    events.emit(EventKind::ShardUnitDispatched, unit);
                }
                // Dropping the senders signals end-of-stream: workers
                // flush and report.
                return (pulled, None);
            }
            Err(e) => {
                // Source failure: like the single-lane driver, no
                // end-of-stream flush happens.
                abort_all(txs);
                return (pulled, Some(e));
            }
        }
    }
}

fn abort_all(txs: &[Sender<ShardIn>]) {
    for tx in txs {
        let _ = tx.send(ShardIn::Abort);
    }
}

/// Worker: drives one cloned chain over its shard of the stream,
/// echoing unit boundaries so the merge can interleave outputs.
fn run_worker(
    mut ops: Vec<Box<dyn Operator>>,
    rx: &Receiver<ShardIn>,
    tx: &Sender<ShardOut>,
    timers: Vec<Option<Arc<StageTimer>>>,
    events: &EventSink,
) {
    if events.enabled() {
        for op in &mut ops {
            op.attach_events(events);
        }
    }
    let mut stats: Vec<StageStats> = ops
        .iter()
        .zip(timers)
        .map(|(op, timer)| StageStats::with_timer(op.name(), timer))
        .collect();
    let mut totals = SinkTotals::default();
    let mut received = 0u64;
    let mut aborted = false;
    loop {
        match rx.recv() {
            Ok(ShardIn::Rec(record)) => {
                received += 1;
                let mut sink = WorkerSink { tx };
                if let Err(e) = feed_chain(&mut ops, &mut stats, record, &mut totals, &mut sink) {
                    let _ = tx.send(ShardOut::Failed(e));
                    return;
                }
            }
            Ok(ShardIn::UnitEnd) => {
                if tx.send(ShardOut::UnitEnd).is_err() {
                    return;
                }
            }
            Ok(ShardIn::Abort) => {
                aborted = true;
                break;
            }
            Err(_) => break, // splitter done: end of stream
        }
    }
    if !aborted {
        if tx.send(ShardOut::Eos).is_err() {
            return;
        }
        let mut sink = WorkerSink { tx };
        if let Err(e) = flush_chain(&mut ops, &mut stats, &mut totals, &mut sink) {
            let _ = tx.send(ShardOut::Failed(e));
            return;
        }
    }
    let _ = tx.send(ShardOut::Done(Box::new(StreamStats {
        stages: stats,
        source_records: received,
        sink_records: totals.records,
        sink_bytes: totals.bytes,
    })));
}

/// Merge: drains worker outputs in unit order (round-robin over the
/// per-worker queues — assignment and queue order make that exactly the
/// single-lane output order), then emits end-of-stream flushes in
/// worker order, then folds the per-shard statistics.
fn run_merge(
    rxs: &[Receiver<ShardOut>],
    sink: &mut dyn Sink,
    events: &EventSink,
) -> Result<StreamStats, PipelineError> {
    let workers = rxs.len() as u64;
    let mut merged = StreamStats::default();
    let mut done = vec![false; rxs.len()];
    let mut sink_records = 0u64;
    let mut sink_bytes = 0u64;
    let mut unit = 0u64;
    // Phase 1: unit-ordered output. When the worker that would own the
    // next unit reports end-of-stream instead, no later unit exists
    // anywhere (round-robin assignment), so the phase is over.
    'units: loop {
        let w = (unit % workers) as usize;
        loop {
            match rxs[w].recv() {
                Ok(ShardOut::Rec(r)) => {
                    sink_records += 1;
                    sink_bytes += r.byte_len() as u64;
                    sink.push(r)?;
                }
                Ok(ShardOut::UnitEnd) => {
                    events.emit(EventKind::ShardUnitMerged, unit);
                    unit += 1;
                    continue 'units;
                }
                // Err(_): worker vanished without a report; phase 2's
                // drain settles what it managed to produce.
                Ok(ShardOut::Eos) | Err(_) => break 'units,
                Ok(ShardOut::Done(stats)) => {
                    merged.merge(&stats);
                    done[w] = true;
                    break 'units;
                }
                Ok(ShardOut::Failed(e)) => return Err(e),
            }
        }
    }
    // Phase 2: `on_eos` flush output, in worker order. For scope-local
    // chains only the worker holding the final (possibly unbalanced)
    // unit emits anything here, which lands exactly where the
    // single-lane flush would.
    for (w, rx) in rxs.iter().enumerate() {
        if done[w] {
            continue;
        }
        loop {
            match rx.recv() {
                Ok(ShardOut::Rec(r)) => {
                    sink_records += 1;
                    sink_bytes += r.byte_len() as u64;
                    sink.push(r)?;
                }
                Ok(ShardOut::UnitEnd | ShardOut::Eos) => {}
                Ok(ShardOut::Done(stats)) => {
                    merged.merge(&stats);
                    break;
                }
                Ok(ShardOut::Failed(e)) => return Err(e),
                Err(_) => break,
            }
        }
    }
    // The merge is the authority on what reached the final sink.
    merged.sink_records = sink_records;
    merged.sink_bytes = sink_bytes;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::fault::FailAfter;
    use crate::operator::{CountingSink, NullSink};
    use crate::ops::{MapPayload, Passthrough, RecordCounter, RecordFilter, ScopeRepair, ScopeSum};
    use crate::record::{Payload, RecordKind};
    use crate::source::FnSource;

    /// `clips` top-level scopes with `per_clip` data records each.
    fn clip_stream(clips: usize, per_clip: usize) -> Vec<Record> {
        let mut v = Vec::new();
        let mut seq = 0u64;
        for c in 0..clips {
            v.push(Record::open_scope(1, vec![]));
            for i in 0..per_clip {
                v.push(Record::data(0, Payload::f64(vec![(c * 100 + i) as f64])).with_seq(seq));
                seq += 1;
            }
            v.push(Record::close_scope(1));
        }
        v
    }

    fn stateful_pipeline() -> Pipeline {
        let mut p = Pipeline::new();
        p.add(MapPayload::new("plus1", |v: &mut [f64]| {
            v.iter_mut().for_each(|x| *x += 1.0);
        }));
        p.add(ScopeSum::new(999));
        p.add(RecordFilter::new("drop-odd-seq", |r: &Record| {
            r.seq.is_multiple_of(2) || r.subtype == 999
        }));
        p
    }

    #[test]
    fn sharded_matches_streaming_for_all_worker_counts() {
        let input = clip_stream(13, 5);
        let mut single = Vec::new();
        stateful_pipeline()
            .run_streaming(input.clone().into_iter(), &mut single)
            .unwrap();
        for workers in 1..=6 {
            let mut sharded = Vec::new();
            let stats = stateful_pipeline()
                .run_sharded(input.clone().into_iter(), &mut sharded, workers)
                .unwrap();
            assert_eq!(single, sharded, "workers={workers}");
            assert_eq!(stats.source_records as usize, input.len());
            assert_eq!(stats.sink_records as usize, sharded.len());
        }
    }

    #[test]
    fn skewed_unit_sizes_still_merge_in_order() {
        // Unit 0 is huge, the rest are tiny: fast workers finish far
        // ahead, and the merge must still interleave exactly.
        let mut input = Vec::new();
        input.push(Record::open_scope(1, vec![]));
        for i in 0..500u64 {
            input.push(Record::data(0, Payload::f64(vec![i as f64])).with_seq(i));
        }
        input.push(Record::close_scope(1));
        input.extend(clip_stream(20, 1));
        let mut single = Vec::new();
        stateful_pipeline()
            .run_streaming(input.clone().into_iter(), &mut single)
            .unwrap();
        let mut sharded = Vec::new();
        stateful_pipeline()
            .run_sharded(input.into_iter(), &mut sharded, 4)
            .unwrap();
        assert_eq!(single, sharded);
    }

    #[test]
    fn unscoped_records_and_stray_closes_are_standalone_units() {
        let mut input = vec![
            Record::data(0, Payload::f64(vec![1.0])).with_seq(0),
            Record::close_scope(9), // stray: its own unit
            Record::data(0, Payload::f64(vec![2.0])).with_seq(2),
        ];
        input.extend(clip_stream(3, 2));
        let build = || {
            let mut p = Pipeline::new();
            p.add(ScopeRepair::new());
            p.add(ScopeSum::new(999));
            p
        };
        let mut single = Vec::new();
        build()
            .run_streaming(input.clone().into_iter(), &mut single)
            .unwrap();
        for workers in [1, 2, 3, 5] {
            let mut sharded = Vec::new();
            build()
                .run_sharded(input.clone().into_iter(), &mut sharded, workers)
                .unwrap();
            assert_eq!(single, sharded, "workers={workers}");
        }
    }

    #[test]
    fn unbalanced_tail_flushes_at_stream_end() {
        // The last scope never closes: the owning worker's ScopeRepair
        // must emit the BadCloseScope at the very end of the merged
        // stream, exactly like the single-lane flush.
        let mut input = clip_stream(7, 3);
        input.push(Record::open_scope(2, vec![]));
        input.push(Record::data(0, Payload::f64(vec![9.0])));
        let build = || {
            let mut p = Pipeline::new();
            p.add(ScopeRepair::new());
            p
        };
        let mut single = Vec::new();
        build()
            .run_streaming(input.clone().into_iter(), &mut single)
            .unwrap();
        assert_eq!(single.last().unwrap().kind, RecordKind::BadCloseScope);
        for workers in [2, 4] {
            let mut sharded = Vec::new();
            build()
                .run_sharded(input.clone().into_iter(), &mut sharded, workers)
                .unwrap();
            assert_eq!(single, sharded, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_units() {
        let input = clip_stream(2, 3);
        let mut single = Vec::new();
        stateful_pipeline()
            .run_streaming(input.clone().into_iter(), &mut single)
            .unwrap();
        let mut sharded = Vec::new();
        stateful_pipeline()
            .run_sharded(input.into_iter(), &mut sharded, 8)
            .unwrap();
        assert_eq!(single, sharded);
    }

    #[test]
    fn empty_stream() {
        let mut sink = CountingSink::default();
        let stats = stateful_pipeline()
            .run_sharded(std::iter::empty(), &mut sink, 3)
            .unwrap();
        assert_eq!(stats.source_records, 0);
        assert_eq!(stats.sink_records, 0);
        assert_eq!(sink.records, 0);
    }

    #[test]
    fn empty_chain_is_identity() {
        let input = clip_stream(5, 2);
        let mut out = Vec::new();
        Pipeline::new()
            .run_sharded(input.clone().into_iter(), &mut out, 3)
            .unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn stats_merge_accounts_for_every_record() {
        let input = clip_stream(10, 4);
        let single_stats = stateful_pipeline()
            .run_streaming(input.clone().into_iter(), &mut NullSink)
            .unwrap();
        let sharded_stats = stateful_pipeline()
            .run_sharded(input.into_iter(), &mut NullSink, 3)
            .unwrap();
        assert_eq!(sharded_stats.source_records, single_stats.source_records);
        assert_eq!(sharded_stats.sink_records, single_stats.sink_records);
        assert_eq!(sharded_stats.sink_bytes, single_stats.sink_bytes);
        for (a, b) in sharded_stats.stages.iter().zip(&single_stats.stages) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.records_in, b.records_in, "stage {}", a.name);
            assert_eq!(a.records_out, b.records_out, "stage {}", a.name);
            assert_eq!(a.bytes_out, b.bytes_out, "stage {}", a.name);
            // Per-shard peaks never exceed the single-lane peak for
            // scope-local chains (each shard sees a subset of units).
            assert!(a.peak_burst <= b.peak_burst.max(1), "stage {}", a.name);
        }
    }

    #[test]
    fn operator_error_is_deterministic_and_stream_ordered() {
        // FailAfter(n) inside each worker fires at a worker-local
        // count; run against a single worker it reproduces the
        // single-lane abort exactly.
        let input = clip_stream(6, 4);
        let build = || {
            let mut p = Pipeline::new();
            p.add(FailAfter::new(9));
            p
        };
        let mut single = Vec::new();
        let single_err = build()
            .run_streaming(input.clone().into_iter(), &mut single)
            .unwrap_err();
        let mut sharded = Vec::new();
        let sharded_err = build()
            .run_sharded(input.into_iter(), &mut sharded, 1)
            .unwrap_err();
        assert_eq!(single, sharded);
        assert_eq!(single_err.to_string(), sharded_err.to_string());
    }

    #[test]
    fn operator_error_with_many_workers_aborts() {
        let input = clip_stream(8, 3);
        let mut p = Pipeline::new();
        p.add(FailAfter::new(2));
        let err = p
            .run_sharded(input.into_iter(), &mut NullSink, 4)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Operator { .. }));
    }

    #[test]
    fn source_error_propagates_without_flush() {
        let mut n = 0u64;
        let src = FnSource(move || {
            n += 1;
            if n > 5 {
                Err(PipelineError::Disconnected("sensor feed died".into()))
            } else {
                Ok(Some(Record::data(0, Payload::f64(vec![n as f64]))))
            }
        });
        let mut p = Pipeline::new();
        p.add(Passthrough);
        let mut sink = CountingSink::default();
        let err = p.run_sharded(src, &mut sink, 3).unwrap_err();
        assert!(matches!(err, PipelineError::Disconnected(_)));
        // Everything before the failure flowed, like the single-lane
        // driver.
        assert_eq!(sink.records, 5);
    }

    #[test]
    fn non_cloneable_operator_is_rejected() {
        struct Opaque;
        impl Operator for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn on_record(
                &mut self,
                record: Record,
                out: &mut dyn Sink,
            ) -> Result<(), PipelineError> {
                out.push(record)
            }
        }
        let mut p = Pipeline::new();
        p.add(Opaque);
        let err = p
            .run_sharded(clip_stream(2, 2).into_iter(), &mut NullSink, 2)
            .unwrap_err();
        // Pre-flight analysis refuses the chain before any shard
        // spawns, with a ShardUnsafe diagnostic naming the operator.
        let PipelineError::Analysis(diags) = &err else {
            panic!("expected an analysis error, got {err}");
        };
        assert!(diags.iter().any(|d| {
            d.kind == crate::analyze::DiagnosticKind::ShardUnsafe && d.operator == "opaque"
        }));
        assert!(err.to_string().contains("opaque"));
    }

    #[test]
    fn factory_route_needs_no_clone_op() {
        let sharded = ShardedPipeline::from_factory(3, |_w| {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("gain", |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x *= 10.0);
            }));
            p
        });
        assert_eq!(sharded.workers(), 3);
        let mut out = Vec::new();
        sharded
            .run(clip_stream(4, 2).into_iter(), &mut out)
            .unwrap();
        assert_eq!(out.len(), 4 * 4);
        assert_eq!(out[2].payload.as_f64().unwrap(), &[10.0]);
    }

    #[test]
    fn record_counter_clones_share_one_handle() {
        let (counter, handle) = RecordCounter::new();
        let mut p = Pipeline::new();
        p.add(counter);
        p.run_sharded(clip_stream(6, 3).into_iter(), &mut NullSink, 3)
            .unwrap();
        let s = handle.snapshot();
        assert_eq!(s.data_records, 18);
        assert_eq!(s.opens, 6);
        assert_eq!(s.closes, 6);
    }

    #[test]
    fn tiny_queue_capacity_still_correct() {
        let input = clip_stream(9, 3);
        let mut single = Vec::new();
        stateful_pipeline()
            .run_streaming(input.clone().into_iter(), &mut single)
            .unwrap();
        for capacity in [0usize, 1, 2] {
            let mut sharded = ShardedPipeline::from_pipeline(&stateful_pipeline(), 3).unwrap();
            sharded.set_queue_capacity(capacity);
            let mut out = Vec::new();
            sharded.run(input.clone().into_iter(), &mut out).unwrap();
            assert_eq!(single, out, "capacity={capacity}");
        }
    }

    #[test]
    #[should_panic(expected = "workers must be non-zero")]
    fn zero_workers_panics() {
        let _ = ShardedPipeline::from_pipeline(&Pipeline::new(), 0);
    }
}
