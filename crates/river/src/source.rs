//! Record sources for the streaming executor.
//!
//! A [`Source`] is the pull side of [`Pipeline::run_streaming`]: the
//! driver pulls one record at a time and pushes it depth-first through
//! the fused operator chain, so a source backed by a generator or a
//! file handle lets arbitrarily long streams flow with constant memory
//! — nothing upstream of the operators' own internal state is ever
//! materialized.
//!
//! Three families are provided:
//!
//! - any `Iterator<Item = Record>` is a source (blanket impl), so
//!   `vec.into_iter()` and lazily mapped iterators work directly;
//! - [`FnSource`] adapts a fallible closure, for sources that can fail
//!   mid-stream (network readers, decoders);
//! - [`ChunkedF64Source`] chunks an `f64` sample iterator into
//!   fixed-length data records, optionally wrapped in a scope — the
//!   streaming equivalent of materializing a clip's record vector.
//!
//! [`Pipeline::run_streaming`]: crate::pipeline::Pipeline::run_streaming

use crate::error::PipelineError;
use crate::record::{Payload, Record};

/// A pull-based producer of records, consumed by
/// [`Pipeline::run_streaming`](crate::pipeline::Pipeline::run_streaming).
pub trait Source {
    /// Produces the next record, `None` at end-of-stream.
    ///
    /// # Errors
    ///
    /// Implementations report upstream failure (e.g. a broken
    /// connection or a malformed frame).
    fn next_record(&mut self) -> Result<Option<Record>, PipelineError>;
}

/// Every record iterator is an infallible source.
impl<I> Source for I
where
    I: Iterator<Item = Record>,
{
    fn next_record(&mut self) -> Result<Option<Record>, PipelineError> {
        Ok(self.next())
    }
}

/// A source driven by a fallible closure — `Ok(None)` ends the stream.
///
/// # Example
///
/// ```
/// use dynamic_river::prelude::*;
/// use dynamic_river::source::FnSource;
///
/// let mut n = 0u64;
/// let src = FnSource(move || {
///     n += 1;
///     Ok((n <= 3).then(|| Record::data(0, Payload::Empty)))
/// });
/// let count = Pipeline::new().run_streaming(src, &mut NullSink)?.sink_records;
/// assert_eq!(count, 3);
/// # Ok::<(), PipelineError>(())
/// ```
pub struct FnSource<F>(pub F);

impl<F> Source for FnSource<F>
where
    F: FnMut() -> Result<Option<Record>, PipelineError>,
{
    fn next_record(&mut self) -> Result<Option<Record>, PipelineError> {
        (self.0)()
    }
}

/// Chunks a sample iterator into fixed-length `F64` data records,
/// optionally wrapped in one scope. Trailing samples that do not fill a
/// record are dropped, matching the batch record builders (the sensor
/// platform sends whole records).
///
/// Memory use is one chunk, whatever the stream length — this is the
/// intended feed for unbounded acoustic monitoring.
///
/// # Example
///
/// ```
/// use dynamic_river::prelude::*;
/// use dynamic_river::source::{ChunkedF64Source, Source};
///
/// // An unbounded-looking sample generator, chunked into 4-sample
/// // records inside a scope of type 7.
/// let samples = (0..10).map(|i| i as f64);
/// let mut src = ChunkedF64Source::new(samples, 4).with_scope(7, vec![]);
/// let mut records = Vec::new();
/// while let Some(r) = src.next_record()? {
///     records.push(r);
/// }
/// // open + 2 full records (8 samples; the trailing 2 are dropped) + close
/// assert_eq!(records.len(), 4);
/// assert_eq!(records[1].payload.as_f64().unwrap(), &[0.0, 1.0, 2.0, 3.0]);
/// # Ok::<(), PipelineError>(())
/// ```
pub struct ChunkedF64Source<I> {
    samples: I,
    chunk_len: usize,
    subtype: u16,
    scope: Option<(u16, Vec<(String, String)>)>,
    state: ChunkState,
    seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    Start,
    Body,
    Done,
}

impl<I> ChunkedF64Source<I>
where
    I: Iterator<Item = f64>,
{
    /// Creates a source emitting bare data records of `chunk_len`
    /// samples (subtype 0; see [`with_subtype`](Self::with_subtype)).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    pub fn new(samples: impl IntoIterator<Item = f64, IntoIter = I>, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be non-zero");
        ChunkedF64Source {
            samples: samples.into_iter(),
            chunk_len,
            subtype: 0,
            scope: None,
            state: ChunkState::Start,
            seq: 0,
        }
    }

    /// Sets the subtype stamped on every data record.
    pub fn with_subtype(mut self, subtype: u16) -> Self {
        self.subtype = subtype;
        self
    }

    /// Wraps the whole stream in one scope: an `OpenScope` of
    /// `scope_type` carrying `context` first, a matching `CloseScope`
    /// last (emitted even when the iterator yields no full chunk).
    pub fn with_scope(mut self, scope_type: u16, context: Vec<(String, String)>) -> Self {
        self.scope = Some((scope_type, context));
        self
    }

    fn next_chunk(&mut self) -> Option<Record> {
        let mut chunk = Vec::with_capacity(self.chunk_len);
        for x in self.samples.by_ref().take(self.chunk_len) {
            chunk.push(x);
        }
        if chunk.len() < self.chunk_len {
            return None; // trailing partial (or empty) chunk: dropped
        }
        let seq = self.seq;
        self.seq += 1;
        let depth = u32::from(self.scope.is_some());
        Some(
            Record::data(self.subtype, Payload::f64(chunk))
                .with_seq(seq)
                .with_depth(depth),
        )
    }
}

/// Concatenates sources end to end: each is drained fully before the
/// next starts — an archive of clips as one stream. Fully lazy: the
/// source iterator itself is advanced on demand, so neither the
/// sources nor their records are materialized ahead of consumption
/// (an unbounded archive generator streams in constant memory).
///
/// # Example
///
/// ```
/// use dynamic_river::prelude::*;
/// use dynamic_river::source::{ChainedSource, ChunkedF64Source, Source};
///
/// let clips = (0..3).map(|c| {
///     ChunkedF64Source::new((0..8).map(move |i| (c * 8 + i) as f64), 4)
///         .with_scope(7, vec![])
/// });
/// let mut src = ChainedSource::new(clips);
/// let mut records = Vec::new();
/// while let Some(r) = src.next_record()? {
///     records.push(r);
/// }
/// // 3 × (open + 2 data + close)
/// assert_eq!(records.len(), 12);
/// # Ok::<(), PipelineError>(())
/// ```
pub struct ChainedSource<I: Iterator> {
    sources: I,
    current: Option<I::Item>,
}

impl<S, I> ChainedSource<I>
where
    S: Source,
    I: Iterator<Item = S>,
{
    /// Chains the given sources in order.
    pub fn new(sources: impl IntoIterator<Item = S, IntoIter = I>) -> Self {
        ChainedSource {
            sources: sources.into_iter(),
            current: None,
        }
    }
}

impl<S, I> Source for ChainedSource<I>
where
    S: Source,
    I: Iterator<Item = S>,
{
    fn next_record(&mut self) -> Result<Option<Record>, PipelineError> {
        loop {
            if let Some(current) = &mut self.current {
                if let Some(record) = current.next_record()? {
                    return Ok(Some(record));
                }
                self.current = None;
            }
            match self.sources.next() {
                Some(next) => self.current = Some(next),
                None => return Ok(None),
            }
        }
    }
}

impl<I> Source for ChunkedF64Source<I>
where
    I: Iterator<Item = f64>,
{
    fn next_record(&mut self) -> Result<Option<Record>, PipelineError> {
        match self.state {
            ChunkState::Start => {
                self.state = ChunkState::Body;
                if let Some((scope_type, context)) = &self.scope {
                    return Ok(Some(
                        Record::open_scope(*scope_type, context.clone()).with_depth(0),
                    ));
                }
                self.next_record()
            }
            ChunkState::Body => {
                if let Some(r) = self.next_chunk() {
                    Ok(Some(r))
                } else {
                    self.state = ChunkState::Done;
                    Ok(self
                        .scope
                        .as_ref()
                        .map(|(scope_type, _)| Record::close_scope(*scope_type).with_depth(0)))
                }
            }
            ChunkState::Done => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use crate::scope::validate_scopes;

    fn drain(mut src: impl Source) -> Vec<Record> {
        let mut out = Vec::new();
        while let Some(r) = src.next_record().unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn iterator_is_a_source() {
        let records = vec![
            Record::data(0, Payload::Empty),
            Record::data(1, Payload::Empty),
        ];
        assert_eq!(drain(records.clone().into_iter()), records);
    }

    #[test]
    fn fn_source_ends_on_none() {
        let mut left = 2;
        let src = FnSource(move || {
            if left == 0 {
                return Ok(None);
            }
            left -= 1;
            Ok(Some(Record::data(9, Payload::Empty)))
        });
        assert_eq!(drain(src).len(), 2);
    }

    #[test]
    fn fn_source_propagates_errors() {
        let mut src = FnSource(|| Err(PipelineError::Disconnected("feed died".into())));
        assert!(src.next_record().is_err());
    }

    #[test]
    fn chunked_source_drops_trailing_partial() {
        let out = drain(ChunkedF64Source::new((0..10).map(f64::from), 4).with_subtype(3));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].subtype, 3);
        assert_eq!(out[0].seq, 0);
        assert_eq!(out[1].seq, 1);
        assert_eq!(out[1].payload.as_f64().unwrap(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(out[0].scope_depth, 0);
    }

    #[test]
    fn chunked_source_wraps_in_scope() {
        let out = drain(
            ChunkedF64Source::new((0..8).map(f64::from), 4)
                .with_scope(7, vec![("rate".into(), "20160".into())]),
        );
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].kind, RecordKind::OpenScope);
        assert_eq!(out[0].payload.context("rate"), Some("20160"));
        assert_eq!(out[1].scope_depth, 1);
        assert_eq!(out[3].kind, RecordKind::CloseScope);
        validate_scopes(&out).unwrap();
    }

    #[test]
    fn empty_scoped_stream_still_balances() {
        let out = drain(ChunkedF64Source::new(std::iter::empty(), 4).with_scope(1, vec![]));
        assert_eq!(out.len(), 2);
        validate_scopes(&out).unwrap();
    }

    #[test]
    #[should_panic(expected = "chunk_len must be non-zero")]
    fn zero_chunk_len_panics() {
        let _ = ChunkedF64Source::new(std::iter::empty(), 0);
    }

    #[test]
    fn chained_source_concatenates_in_order() {
        let clips = (0..3u64).map(|c| {
            ChunkedF64Source::new((0..4).map(move |i| (c * 4 + i) as f64), 2).with_scope(1, vec![])
        });
        let out = drain(ChainedSource::new(clips));
        assert_eq!(out.len(), 12);
        validate_scopes(&out).unwrap();
        assert_eq!(out[1].payload.as_f64().unwrap(), &[0.0, 1.0]);
        assert_eq!(out[10].payload.as_f64().unwrap(), &[10.0, 11.0]);
    }

    #[test]
    fn chained_source_of_nothing_is_empty() {
        let none: Vec<ChunkedF64Source<std::iter::Empty<f64>>> = Vec::new();
        assert!(drain(ChainedSource::new(none)).is_empty());
    }
}
