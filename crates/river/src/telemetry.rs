//! Runtime telemetry: per-stage latency histograms, structured event
//! tracing, and mergeable snapshots (`DESIGN.md` §16).
//!
//! The paper's rivers are meant to run unattended for weeks on
//! distributed hosts; `StreamStats` counters alone cannot answer *where
//! time is going* or *why a session fell behind*. This module is the
//! zero-dependency substrate every runner threads through:
//!
//! - [`StageTimer`] — lock-free per-operator wall-clock accounting.
//!   Latencies are recorded into a fixed array of 64 log2 buckets of
//!   `AtomicU64`, so sharded workers hammer the same timer without a
//!   lock and p50/p90/p99/max stay derivable after the fact.
//! - [`EventLog`] — a bounded ring buffer of [`TelemetryEvent`]s with
//!   monotonic sequence numbers and a cheap severity filter applied
//!   *before* the ring lock is touched.
//! - [`Telemetry`] — the cloneable registry handle runners share, and
//!   [`Snapshot`] — the mergeable, serializable view exposed by
//!   `Pipeline::telemetry_snapshot()` and friends. Histograms merge
//!   bucket-wise; events interleave by sequence number.
//!
//! Everything is gated on [`TelemetryConfig`]: `Off` keeps the hot path
//! at a single `Option` branch per stage, `Counters` turns on the
//! histograms, `Full` adds event tracing.
//!
//! ```
//! use dynamic_river::prelude::*;
//!
//! let mut pipeline = Pipeline::new();
//! pipeline.add(MapPayload::new("gain", |v: &mut [f64]| {
//!     v.iter_mut().for_each(|x| *x *= 0.5);
//! }));
//! pipeline.set_telemetry(TelemetryConfig::Counters);
//!
//! let records = vec![
//!     Record::data(0, Payload::f64(vec![2.0, 4.0])),
//!     Record::data(0, Payload::f64(vec![6.0, 8.0])),
//! ];
//! let mut out = Vec::new();
//! pipeline.run_streaming(records.into_iter(), &mut out).unwrap();
//!
//! let snapshot = pipeline.telemetry_snapshot();
//! let gain = snapshot.stages.iter().find(|s| s.name == "gain").unwrap();
//! assert_eq!(gain.latency.count, 2); // one observation per record
//! assert!(snapshot.to_json().starts_with("{\"stages\": ["));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of log2 latency buckets in a [`StageTimer`] histogram.
///
/// Bucket `b` covers `[2^b, 2^(b+1))` nanoseconds (bucket 0 also
/// absorbs 0 ns), so 64 buckets span every representable `u64` latency.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Default capacity of an [`EventLog`] ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// How much telemetry a runner records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryConfig {
    /// No telemetry. The per-record cost is one `Option` branch per
    /// stage; no clocks are read and no events are buffered.
    #[default]
    Off,
    /// Latency histograms and drop counters only (two monotonic clock
    /// reads per stage per record, all updates lock-free atomics).
    Counters,
    /// Histograms plus structured event tracing into the [`EventLog`].
    Full,
}

impl TelemetryConfig {
    /// Whether stage timers (latency histograms) are recorded.
    pub fn timers_enabled(self) -> bool {
        !matches!(self, TelemetryConfig::Off)
    }

    /// Whether structured events are recorded.
    pub fn events_enabled(self) -> bool {
        matches!(self, TelemetryConfig::Full)
    }
}

/// Severity of a [`TelemetryEvent`], used by the [`EventLog`] filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventSeverity {
    /// High-volume flow tracing (scope boundaries, shard units).
    Debug = 0,
    /// Notable domain milestones (trigger fire, cutter run, sessions).
    Info = 1,
    /// Operational pressure (backpressure stalls).
    Warn = 2,
    /// Failures (session errors, rejected chains).
    Error = 3,
}

impl EventSeverity {
    fn from_u8(raw: u8) -> Self {
        match raw {
            0 => EventSeverity::Debug,
            1 => EventSeverity::Info,
            2 => EventSeverity::Warn,
            _ => EventSeverity::Error,
        }
    }

    /// Lower-case label used by the JSON exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            EventSeverity::Debug => "debug",
            EventSeverity::Info => "info",
            EventSeverity::Warn => "warn",
            EventSeverity::Error => "error",
        }
    }
}

/// The event taxonomy: everything a river can report about itself.
///
/// Each kind has an inherent [`EventSeverity`] so the log filter needs
/// no per-call-site severity argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// An `OpenScope` record entered the chain (subject: scope type).
    ScopeOpen,
    /// A `CloseScope`/`BadCloseScope` record entered the chain
    /// (subject: scope type).
    ScopeClose,
    /// An adaptive trigger transitioned low→high (subject: record seq).
    TriggerFire,
    /// The cutter emitted an ensemble run (subject: start sample).
    CutterRun,
    /// The shard splitter finished dispatching a top-level scope unit
    /// (subject: unit number).
    ShardUnitDispatched,
    /// The shard merge drained a unit back into order (subject: unit
    /// number).
    ShardUnitMerged,
    /// A bounded queue was full and the producer began blocking
    /// (subject: runner-specific, e.g. worker or stage index).
    StallEnter,
    /// The blocked producer resumed (subject matches the enter event).
    StallExit,
    /// The server accepted a session (subject: session id).
    SessionAccept,
    /// A session drained to a clean or repaired end (subject: records
    /// received).
    SessionDrain,
    /// A session's peer sent a keepalive sentinel — dormant, not dead
    /// (subject: session id).
    SessionKeepalive,
    /// A session went silent past the server's idle timeout and was
    /// reaped with scope repair (subject: session id).
    SessionTimeout,
    /// A session ended with an error (subject: session id).
    SessionError,
    /// Static chain analysis refused a pipeline (subject: number of
    /// error diagnostics).
    AnalysisReject,
}

impl EventKind {
    /// The inherent severity of this kind of event.
    pub fn severity(self) -> EventSeverity {
        match self {
            EventKind::ScopeOpen
            | EventKind::ScopeClose
            | EventKind::ShardUnitDispatched
            | EventKind::ShardUnitMerged
            | EventKind::SessionKeepalive => EventSeverity::Debug,
            EventKind::TriggerFire
            | EventKind::CutterRun
            | EventKind::SessionAccept
            | EventKind::SessionDrain => EventSeverity::Info,
            EventKind::StallEnter | EventKind::StallExit | EventKind::SessionTimeout => {
                EventSeverity::Warn
            }
            EventKind::SessionError | EventKind::AnalysisReject => EventSeverity::Error,
        }
    }

    /// Snake-case label used by the JSON exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::ScopeOpen => "scope_open",
            EventKind::ScopeClose => "scope_close",
            EventKind::TriggerFire => "trigger_fire",
            EventKind::CutterRun => "cutter_run",
            EventKind::ShardUnitDispatched => "shard_unit_dispatched",
            EventKind::ShardUnitMerged => "shard_unit_merged",
            EventKind::StallEnter => "stall_enter",
            EventKind::StallExit => "stall_exit",
            EventKind::SessionAccept => "session_accept",
            EventKind::SessionDrain => "session_drain",
            EventKind::SessionKeepalive => "session_keepalive",
            EventKind::SessionTimeout => "session_timeout",
            EventKind::SessionError => "session_error",
            EventKind::AnalysisReject => "analysis_reject",
        }
    }
}

/// One structured telemetry event.
///
/// `Ord` is derived with `seq` as the leading field, which makes the
/// merge interleave in [`Snapshot::merge`] a total order: merging event
/// lists from any number of lanes is commutative and associative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TelemetryEvent {
    /// Monotonic sequence number, unique within one [`EventLog`].
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Which lane reported it: 0 for the driver/splitter, `1 + worker`
    /// for shard workers, the session id for server sessions.
    pub lane: u64,
    /// Kind-specific detail (scope type, unit number, record seq, …).
    pub subject: u64,
}

impl TelemetryEvent {
    /// The inherent severity of this event's kind.
    pub fn severity(&self) -> EventSeverity {
        self.kind.severity()
    }
}

struct EventRing {
    buf: VecDeque<TelemetryEvent>,
    cap: usize,
    dropped: u64,
}

/// Bounded ring buffer of [`TelemetryEvent`]s.
///
/// The ring is preallocated to capacity, so steady-state pushes never
/// allocate: once full, the oldest event is evicted and counted in
/// [`EventLog::dropped`]. The severity filter is an atomic read applied
/// before the ring mutex is taken, so filtered-out events cost no lock.
pub struct EventLog {
    seq: AtomicU64,
    min_severity: AtomicU8,
    ring: Mutex<EventRing>,
}

fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl EventLog {
    /// Creates a log retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventLog {
            seq: AtomicU64::new(0),
            min_severity: AtomicU8::new(EventSeverity::Debug as u8),
            ring: Mutex::new(EventRing {
                buf: VecDeque::with_capacity(cap),
                cap,
                dropped: 0,
            }),
        }
    }

    /// Drops events below `severity` at record time.
    pub fn set_min_severity(&self, severity: EventSeverity) {
        self.min_severity.store(severity as u8, Ordering::Relaxed);
    }

    /// The current severity floor.
    pub fn min_severity(&self) -> EventSeverity {
        EventSeverity::from_u8(self.min_severity.load(Ordering::Relaxed))
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn push(&self, kind: EventKind, lane: u64, subject: u64) {
        if (kind.severity() as u8) < self.min_severity.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TelemetryEvent {
            seq,
            kind,
            lane,
            subject,
        };
        let mut ring = lock_ignore_poison(&self.ring);
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event);
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        lock_ignore_poison(&self.ring).buf.iter().copied().collect()
    }

    /// How many events were evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        lock_ignore_poison(&self.ring).dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.ring).buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .field("min_severity", &self.min_severity())
            .finish()
    }
}

/// A cheap handle operators and runners use to emit events.
///
/// A disabled sink (the default) is an `Option::None` and a dead
/// branch; an enabled one carries the shared [`EventLog`] plus the lane
/// tag stamped on every event it emits.
#[derive(Debug, Clone, Default)]
pub struct EventSink {
    log: Option<Arc<EventLog>>,
    lane: u64,
}

impl EventSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        EventSink::default()
    }

    /// A sink recording into `log`, tagging events with `lane`.
    pub fn new(log: Arc<EventLog>, lane: u64) -> Self {
        EventSink {
            log: Some(log),
            lane,
        }
    }

    /// Whether emitted events go anywhere.
    pub fn enabled(&self) -> bool {
        self.log.is_some()
    }

    /// The lane tag stamped on emitted events.
    pub fn lane(&self) -> u64 {
        self.lane
    }

    /// The same log with a different lane tag.
    pub fn with_lane(&self, lane: u64) -> Self {
        EventSink {
            log: self.log.clone(),
            lane,
        }
    }

    /// Emits one event (no-op when disabled).
    pub fn emit(&self, kind: EventKind, subject: u64) {
        if let Some(log) = &self.log {
            log.push(kind, self.lane, subject);
        }
    }
}

/// Lock-free per-stage accounting: a log2 latency histogram plus a
/// drop counter, updated with relaxed atomics so any number of sharded
/// workers can record into the same timer without contention.
///
/// Counts are exact once the recording threads have quiesced (joined);
/// a snapshot taken mid-flight may straddle a concurrent record.
#[derive(Debug)]
pub struct StageTimer {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    drops: AtomicU64,
}

impl StageTimer {
    /// A zeroed timer.
    pub fn new() -> Self {
        StageTimer {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            drops: AtomicU64::new(0),
        }
    }

    /// The log2 bucket for a latency: `floor(log2(ns))`, with 0 ns
    /// folded into bucket 0.
    pub fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    /// Records one per-record latency observation.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Counts a record consumed without emitting any output.
    pub fn note_drop(&self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records consumed without emitting any output.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    pub fn histogram(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

impl Default for StageTimer {
    fn default() -> Self {
        StageTimer::new()
    }
}

/// A frozen copy of a [`StageTimer`] histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `b` = `[2^b, 2^(b+1))` ns).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies, for the mean.
    pub sum_ns: u64,
    /// Largest single observation.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise merge: after merging, percentiles reflect the union
    /// of both observation sets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The latency at quantile `p` in `[0, 1]`, reported as the upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(p * count)`. Returns 0 for an empty histogram; within a
    /// bucket the bound overestimates by at most 2x (log2 buckets).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return if b >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
            }
        }
        self.max_ns
    }

    /// Median latency (see [`HistogramSnapshot::percentile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// 90th-percentile latency.
    pub fn p90_ns(&self) -> u64 {
        self.percentile_ns(0.90)
    }

    /// 99th-percentile latency.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }

    /// Exact mean latency (from `sum_ns`, not the buckets).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One stage's telemetry inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Operator name (as reported by `Operator::name`).
    pub name: String,
    /// Per-record self-time histogram.
    pub latency: HistogramSnapshot,
    /// Records consumed without emitting any output.
    pub drops: u64,
}

/// A mergeable, serializable view of a [`Telemetry`] registry.
///
/// Merging is commutative and associative: histograms add bucket-wise
/// (stages matched by name, unknown stages appended), event lists merge
/// as multisets ordered by the total `Ord` on [`TelemetryEvent`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Per-stage histograms, in chain order.
    pub stages: Vec<StageSnapshot>,
    /// Retained events, interleaved by sequence number.
    pub events: Vec<TelemetryEvent>,
    /// Events evicted from the ring to honour its capacity bound.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Merges `other` into `self`: stage histograms bucket-wise by
    /// name, events interleaved by sequence.
    pub fn merge(&mut self, other: &Snapshot) {
        self.merge_stages(other);
        self.events.extend_from_slice(&other.events);
        self.events.sort_unstable();
        self.events_dropped += other.events_dropped;
    }

    /// Merges only the per-stage histograms and drop counters from
    /// `other`, leaving events untouched. Used when the event lists
    /// already share one ring (e.g. server sessions forked from one
    /// registry) and a full merge would double-count them.
    pub fn merge_stages(&mut self, other: &Snapshot) {
        for stage in &other.stages {
            if let Some(mine) = self.stages.iter_mut().find(|s| s.name == stage.name) {
                mine.latency.merge(&stage.latency);
                mine.drops += stage.drops;
            } else {
                self.stages.push(stage.clone());
            }
        }
    }

    /// Total records observed across all stages.
    pub fn total_records(&self) -> u64 {
        self.stages.iter().map(|s| s.latency.count).sum()
    }

    /// Serializes the snapshot as a single JSON object.
    ///
    /// Each stage object leads with exactly
    /// `{"stage": "<name>", "p50_ns": N, "p99_ns": N, …}` so shell
    /// tooling (`ci.sh telemetry-check`) can extract per-stage
    /// percentile lines with a grep.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"stage\": \"{}\", \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"p90_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \
                 \"records\": {}, \"drops\": {}}}",
                json_escape(&s.name),
                s.latency.p50_ns(),
                s.latency.p99_ns(),
                s.latency.p90_ns(),
                s.latency.max_ns,
                s.latency.mean_ns(),
                s.latency.count,
                s.drops,
            );
        }
        out.push_str("], \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"seq\": {}, \"kind\": \"{}\", \"severity\": \"{}\", \
                 \"lane\": {}, \"subject\": {}}}",
                e.seq,
                e.kind.as_str(),
                e.severity().as_str(),
                e.lane,
                e.subject,
            );
        }
        let _ = write!(out, "], \"events_dropped\": {}}}", self.events_dropped);
        out
    }

    /// Renders an aligned text table of per-stage latencies plus an
    /// event summary, for terminals and logs.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>12} {:>8}",
            "stage", "records", "p50_ns", "p90_ns", "p99_ns", "max_ns", "drops"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>10} {:>10} {:>10} {:>12} {:>8}",
                s.name,
                s.latency.count,
                s.latency.p50_ns(),
                s.latency.p90_ns(),
                s.latency.p99_ns(),
                s.latency.max_ns,
                s.drops,
            );
        }
        let _ = writeln!(
            out,
            "events: {} retained, {} dropped",
            self.events.len(),
            self.events_dropped
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "  [{:>6}] {:<22} lane={} subject={}",
                e.seq,
                e.kind.as_str(),
                e.lane,
                e.subject
            );
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct StageEntry {
    name: String,
    timer: Arc<StageTimer>,
}

/// The cloneable telemetry registry handle a runner carries.
///
/// Clones share everything (config, event log, stage timers), which is
/// how sharded workers aggregate into one set of histograms.
/// [`Telemetry::fork_stages`] instead shares the config and event log
/// but starts fresh timers — the shape server sessions need for
/// per-session accounting against a common event stream.
#[derive(Debug, Clone)]
pub struct Telemetry {
    config: TelemetryConfig,
    events: Arc<EventLog>,
    stages: Arc<Mutex<Vec<StageEntry>>>,
}

impl std::fmt::Debug for StageEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageEntry")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::off()
    }
}

impl Telemetry {
    /// A registry recording at `config`, with the default event
    /// capacity.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry::with_event_capacity(config, DEFAULT_EVENT_CAPACITY)
    }

    /// A registry recording at `config` whose event ring retains at
    /// most `capacity` events.
    pub fn with_event_capacity(config: TelemetryConfig, capacity: usize) -> Self {
        Telemetry {
            config,
            events: Arc::new(EventLog::new(capacity)),
            stages: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A disabled registry (the default for every runner).
    pub fn off() -> Self {
        Telemetry::new(TelemetryConfig::Off)
    }

    /// The recording level.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// The shared event log.
    pub fn event_log(&self) -> &Arc<EventLog> {
        &self.events
    }

    /// An [`EventSink`] for `lane`, disabled unless the config is
    /// [`TelemetryConfig::Full`].
    pub fn event_sink(&self, lane: u64) -> EventSink {
        if self.config.events_enabled() {
            EventSink::new(Arc::clone(&self.events), lane)
        } else {
            EventSink::disabled()
        }
    }

    /// A handle sharing this registry's config and event log but with
    /// a fresh, empty stage registry — per-session accounting over a
    /// common event stream.
    pub fn fork_stages(&self) -> Telemetry {
        Telemetry {
            config: self.config,
            events: Arc::clone(&self.events),
            stages: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Registers (or re-fetches) one timer per stage name, positionally.
    ///
    /// Returns all-`None` when timers are disabled. Repeated calls with
    /// the same chain return the same timers, so repeated runs and
    /// sharded workers accumulate into one histogram per stage; calling
    /// with a *different* chain resets the mismatched suffix.
    pub fn stage_timers(&self, names: &[String]) -> Vec<Option<Arc<StageTimer>>> {
        if !self.config.timers_enabled() {
            return names.iter().map(|_| None).collect();
        }
        let mut entries = lock_ignore_poison(&self.stages);
        let matches =
            entries.len() == names.len() && entries.iter().zip(names).all(|(e, n)| e.name == *n);
        if !matches {
            let mut fresh: Vec<StageEntry> = Vec::with_capacity(names.len());
            for (i, name) in names.iter().enumerate() {
                match entries.get(i) {
                    Some(e) if e.name == *name => fresh.push(StageEntry {
                        name: e.name.clone(),
                        timer: Arc::clone(&e.timer),
                    }),
                    _ => fresh.push(StageEntry {
                        name: name.clone(),
                        timer: Arc::new(StageTimer::new()),
                    }),
                }
            }
            *entries = fresh;
        }
        entries.iter().map(|e| Some(Arc::clone(&e.timer))).collect()
    }

    /// A point-in-time [`Snapshot`] of every stage and all retained
    /// events.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            stages: self.stage_snapshots(),
            events: self.events.events(),
            events_dropped: self.events.dropped(),
        }
    }

    /// Like [`Telemetry::snapshot`] but keeping only events tagged with
    /// `lane` — the per-session view when many sessions share one log.
    pub fn snapshot_for_lane(&self, lane: u64) -> Snapshot {
        let mut snap = self.snapshot();
        snap.events.retain(|e| e.lane == lane);
        snap
    }

    fn stage_snapshots(&self) -> Vec<StageSnapshot> {
        lock_ignore_poison(&self.stages)
            .iter()
            .map(|e| StageSnapshot {
                name: e.name.clone(),
                latency: e.timer.histogram(),
                drops: e.timer.drops(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(StageTimer::bucket_index(0), 0);
        assert_eq!(StageTimer::bucket_index(1), 0);
        assert_eq!(StageTimer::bucket_index(2), 1);
        assert_eq!(StageTimer::bucket_index(3), 1);
        assert_eq!(StageTimer::bucket_index(4), 2);
        assert_eq!(StageTimer::bucket_index(1023), 9);
        assert_eq!(StageTimer::bucket_index(1024), 10);
        assert_eq!(StageTimer::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let timer = StageTimer::new();
        // 99 observations around 100ns (bucket 6: 64..=127), one
        // outlier at 1_000_000ns (bucket 19).
        for _ in 0..99 {
            timer.record(100);
        }
        timer.record(1_000_000);
        let h = timer.histogram();
        assert_eq!(h.count, 100);
        assert_eq!(h.p50_ns(), 127);
        assert_eq!(h.p90_ns(), 127);
        // The 100th observation is the outlier; p99 targets
        // ceil(0.99*100)=99, still inside the 100ns bucket.
        assert_eq!(h.p99_ns(), 127);
        assert_eq!(h.percentile_ns(1.0), (1u64 << 20) - 1);
        assert_eq!(h.max_ns, 1_000_000);
        assert_eq!(h.mean_ns(), (99 * 100 + 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = HistogramSnapshot::default();
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn histogram_merge_is_bucket_wise() {
        let a_timer = StageTimer::new();
        let b_timer = StageTimer::new();
        for ns in [10, 20, 30] {
            a_timer.record(ns);
        }
        for ns in [1000, 2000] {
            b_timer.record(ns);
        }
        let mut a = a_timer.histogram();
        let b = b_timer.histogram();
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum_ns, 3060);
        assert_eq!(a.max_ns, 2000);
        let direct = StageTimer::new();
        for ns in [10, 20, 30, 1000, 2000] {
            direct.record(ns);
        }
        assert_eq!(a, direct.histogram());
    }

    #[test]
    fn event_log_bounds_and_filters() {
        let log = EventLog::new(4);
        for i in 0..6 {
            log.push(EventKind::ScopeOpen, 0, i);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 2);
        let events = log.events();
        assert_eq!(events.first().map(|e| e.subject), Some(2));
        assert_eq!(events.last().map(|e| e.subject), Some(5));
        // Severity floor: Debug events are filtered out before the seq
        // counter even advances.
        log.set_min_severity(EventSeverity::Warn);
        log.push(EventKind::ScopeOpen, 0, 99);
        assert_eq!(log.len(), 4);
        log.push(EventKind::StallEnter, 1, 7);
        assert_eq!(log.len(), 4);
        assert_eq!(
            log.events().last().map(|e| e.kind),
            Some(EventKind::StallEnter)
        );
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = EventSink::disabled();
        assert!(!sink.enabled());
        sink.emit(EventKind::SessionError, 1);
        let telemetry = Telemetry::new(TelemetryConfig::Counters);
        assert!(!telemetry.event_sink(0).enabled());
        let full = Telemetry::new(TelemetryConfig::Full);
        let sink = full.event_sink(3);
        sink.emit(EventKind::SessionAccept, 3);
        assert_eq!(full.snapshot().events.len(), 1);
        assert_eq!(full.snapshot().events[0].lane, 3);
    }

    #[test]
    fn stage_timers_are_positional_and_stable() {
        let telemetry = Telemetry::new(TelemetryConfig::Counters);
        let names = vec!["a".to_string(), "b".to_string()];
        let first = telemetry.stage_timers(&names);
        let second = telemetry.stage_timers(&names);
        for (x, y) in first.iter().zip(&second) {
            let (Some(x), Some(y)) = (x, y) else {
                panic!("timers enabled")
            };
            assert!(Arc::ptr_eq(x, y));
        }
        // Off-config registries hand out no timers at all.
        let off = Telemetry::off();
        assert!(off.stage_timers(&names).iter().all(Option::is_none));
        assert!(off.snapshot().stages.is_empty());
    }

    #[test]
    fn fork_shares_events_but_not_timers() {
        let server = Telemetry::new(TelemetryConfig::Full);
        let session = server.fork_stages();
        let names = vec!["stage".to_string()];
        let t1 = server.stage_timers(&names);
        let t2 = session.stage_timers(&names);
        match (&t1[0], &t2[0]) {
            (Some(a), Some(b)) => assert!(!Arc::ptr_eq(a, b)),
            _ => panic!("timers enabled"),
        }
        session.event_sink(7).emit(EventKind::SessionDrain, 42);
        assert_eq!(server.snapshot().events.len(), 1);
        assert_eq!(session.snapshot_for_lane(7).events.len(), 1);
        assert!(session.snapshot_for_lane(8).events.is_empty());
    }

    #[test]
    fn snapshot_merge_interleaves_events_by_seq() {
        let log = EventLog::new(16);
        log.push(EventKind::ScopeOpen, 0, 1);
        log.push(EventKind::TriggerFire, 1, 2);
        log.push(EventKind::ScopeClose, 0, 1);
        let all = log.events();
        let a = Snapshot {
            stages: Vec::new(),
            events: vec![all[0], all[2]],
            events_dropped: 0,
        };
        let b = Snapshot {
            stages: Vec::new(),
            events: vec![all[1]],
            events_dropped: 1,
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.events, all);
        assert_eq!(ab.events_dropped, 1);
    }

    #[test]
    fn to_json_leads_stage_objects_with_percentiles() {
        let telemetry = Telemetry::new(TelemetryConfig::Full);
        let names = vec!["spectrum".to_string()];
        let timers = telemetry.stage_timers(&names);
        if let Some(t) = &timers[0] {
            t.record(100);
            t.record(200);
        }
        telemetry.event_sink(0).emit(EventKind::ScopeOpen, 5);
        let json = telemetry.snapshot().to_json();
        assert!(json.contains("{\"stage\": \"spectrum\", \"p50_ns\": "));
        assert!(json.contains("\"p99_ns\": "));
        assert!(json.contains("\"kind\": \"scope_open\""));
        assert!(json.contains("\"events_dropped\": 0"));
        let table = telemetry.snapshot().render_table();
        assert!(table.contains("spectrum"));
        assert!(table.contains("scope_open"));
    }
}
