//! Property test for the static chain analyzer (DESIGN.md §15).
//!
//! A pool of small operators whose **runtime behavior exactly matches
//! their declared signatures** — subtype mappers, strict consumers,
//! drop filters, balanced scope wrappers, and a scope leaker — is
//! composed into random chains. For every chain the analyzer's verdict
//! is compared against what actually happens when the chain runs (via
//! the reference batch driver, which performs no pre-flight check):
//!
//! - a chain [`Pipeline::check_with`] accepts (no error-severity
//!   diagnostics) never produces a runtime operator error and always
//!   yields scope-balanced output;
//! - equivalently, every chain that fails at runtime — a rejected
//!   record or unbalanced output scopes — was flagged with an error
//!   diagnostic up front.
//!
//! The pool is deliberately restricted to operators the analyzer can
//! track exactly (concrete record classes, statically known scope
//! effects), so the implication holds in both directions; operators
//! with undeclared signatures trade detection for soundness and are
//! covered by the unit tests instead.

use dynamic_river::analyze::{CheckOptions, PayloadKind, RecordClass, Severity};
use dynamic_river::prelude::*;
use dynamic_river::scope::validate_scopes;
use dynamic_river::{ScopeEffect, Signature, UnmatchedPolicy};
use proptest::prelude::*;

/// Subtypes the pool operates over.
const SUBTYPES: std::ops::RangeInclusive<u16> = 1..=4;
/// The scope type the synthesized input stream arrives in.
const INPUT_SCOPE: u16 = 7;
/// Scope types the pool's scope-touching operators use.
const OP_SCOPES: std::ops::RangeInclusive<u16> = 8..=9;

/// One pool operator, as data (so failing cases print readably).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Spec {
    /// Rewrites subtype `from` to `to`; passes everything else.
    Map { from: u16, to: u16 },
    /// Passes subtype `only`; any other data record is a runtime error.
    Strict { only: u16 },
    /// Passes subtype `keep`; silently drops all other data records.
    Filter { keep: u16 },
    /// Wraps each record of subtype `keep` in its own balanced scope.
    Wrap { keep: u16, scope: u16 },
    /// Emits one scope open at stream start and never closes it.
    Leak { scope: u16 },
}

/// Runtime realization of a [`Spec`] — behavior and signature agree by
/// construction.
struct PoolOp {
    spec: Spec,
    leaked: bool,
}

impl PoolOp {
    fn new(spec: Spec) -> Self {
        PoolOp {
            spec,
            leaked: false,
        }
    }
}

impl Operator for PoolOp {
    fn name(&self) -> &'static str {
        match self.spec {
            Spec::Map { .. } => "pool-map",
            Spec::Strict { .. } => "pool-strict",
            Spec::Filter { .. } => "pool-filter",
            Spec::Wrap { .. } => "pool-wrap",
            Spec::Leak { .. } => "pool-leak",
        }
    }

    fn on_record(&mut self, mut record: Record, out: &mut dyn Sink) -> Result<(), PipelineError> {
        if let Spec::Leak { scope } = self.spec {
            if !self.leaked {
                self.leaked = true;
                out.push(Record::open_scope(scope, vec![]))?;
            }
            return out.push(record);
        }
        if record.kind != RecordKind::Data {
            return out.push(record);
        }
        match self.spec {
            Spec::Map { from, to } => {
                if record.subtype == from {
                    record.subtype = to;
                }
                out.push(record)
            }
            Spec::Strict { only } => {
                if record.subtype == only {
                    out.push(record)
                } else {
                    Err(PipelineError::Operator {
                        operator: self.name().to_string(),
                        message: format!("unexpected record subtype {}", record.subtype),
                    })
                }
            }
            Spec::Filter { keep } => {
                if record.subtype == keep {
                    out.push(record)
                } else {
                    Ok(())
                }
            }
            Spec::Wrap { keep, scope } => {
                if record.subtype == keep {
                    out.push(Record::open_scope(scope, vec![]))?;
                    out.push(record)?;
                    out.push(Record::close_scope(scope))
                } else {
                    out.push(record)
                }
            }
            Spec::Leak { .. } => unreachable!("handled above"),
        }
    }

    fn clone_op(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(PoolOp::new(self.spec)))
    }

    fn signature(&self) -> Option<Signature> {
        let f64_of = |s: u16| RecordClass::of(s, PayloadKind::F64);
        Some(match self.spec {
            Spec::Map { from, to } => Signature {
                consumes: vec![f64_of(from)],
                passes_matched: false,
                produces: vec![f64_of(to)],
                unmatched: UnmatchedPolicy::Keep,
                strict_payload: false,
                scope: ScopeEffect::Preserves,
                flushes_at_eos: false,
            },
            Spec::Strict { only } => Signature {
                consumes: vec![f64_of(only)],
                passes_matched: true,
                produces: Vec::new(),
                unmatched: UnmatchedPolicy::Error,
                strict_payload: false,
                scope: ScopeEffect::Preserves,
                flushes_at_eos: false,
            },
            Spec::Filter { keep } => Signature {
                consumes: vec![f64_of(keep)],
                passes_matched: true,
                produces: Vec::new(),
                unmatched: UnmatchedPolicy::Drop,
                strict_payload: false,
                scope: ScopeEffect::Preserves,
                flushes_at_eos: false,
            },
            Spec::Wrap { keep, scope } => Signature {
                consumes: vec![f64_of(keep)],
                passes_matched: true,
                produces: Vec::new(),
                unmatched: UnmatchedPolicy::Keep,
                strict_payload: false,
                scope: ScopeEffect::OpensBalanced { scope_type: scope },
                flushes_at_eos: false,
            },
            Spec::Leak { scope } => {
                Signature::passthrough().with_scope(ScopeEffect::Opens { scope_type: scope })
            }
        })
    }
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    prop_oneof![
        4 => (SUBTYPES, SUBTYPES).prop_map(|(from, to)| Spec::Map { from, to }),
        2 => SUBTYPES.prop_map(|only| Spec::Strict { only }),
        2 => SUBTYPES.prop_map(|keep| Spec::Filter { keep }),
        2 => (SUBTYPES, OP_SCOPES).prop_map(|(keep, scope)| Spec::Wrap { keep, scope }),
        1 => OP_SCOPES.prop_map(|scope| Spec::Leak { scope }),
    ]
}

/// The analysis profile of the synthesized input: subtype-1 `F64` data
/// records inside one scope of type [`INPUT_SCOPE`].
fn input_options() -> CheckOptions {
    CheckOptions {
        input: vec![RecordClass::of(1, PayloadKind::F64)],
        input_scope_types: Some(vec![INPUT_SCOPE]),
        ..CheckOptions::default()
    }
}

/// A concrete stream inhabiting every class the analysis is seeded
/// with: one input scope holding `n` subtype-1 data records.
fn input_stream(n: usize) -> Vec<Record> {
    let mut records = vec![Record::open_scope(INPUT_SCOPE, vec![])];
    for i in 0..n {
        records.push(Record::data(1, Payload::f64(vec![i as f64])));
    }
    records.push(Record::close_scope(INPUT_SCOPE));
    records
}

/// Anchors the property against a vacuous pass: the pool really does
/// contain chains the analyzer accepts and chains it rejects, and both
/// verdicts are correct.
#[test]
fn pool_exercises_both_verdicts() {
    // Accepted and clean: map 1→2, strictly consume 2, wrap it.
    let mut ok = Pipeline::new();
    ok.add(PoolOp::new(Spec::Map { from: 1, to: 2 }));
    ok.add(PoolOp::new(Spec::Strict { only: 2 }));
    ok.add(PoolOp::new(Spec::Wrap { keep: 2, scope: 8 }));
    assert!(
        !ok.check_with(&input_options())
            .iter()
            .any(|d| d.severity == Severity::Error),
        "clean chain rejected"
    );
    let out = ok.run_batch(input_stream(3)).expect("clean chain ran");
    validate_scopes(&out).expect("clean chain balanced");

    // Rejected and failing: map 1→2, then strictly consume 1.
    let mut bad = Pipeline::new();
    bad.add(PoolOp::new(Spec::Map { from: 1, to: 2 }));
    bad.add(PoolOp::new(Spec::Strict { only: 1 }));
    assert!(
        bad.check_with(&input_options())
            .iter()
            .any(|d| d.severity == Severity::Error),
        "failing chain not flagged"
    );
    bad.run_batch(input_stream(3))
        .expect_err("mismatched chain fails at runtime");

    // Rejected and failing: a leaked scope.
    let mut leaky = Pipeline::new();
    leaky.add(PoolOp::new(Spec::Leak { scope: 9 }));
    assert!(
        leaky
            .check_with(&input_options())
            .iter()
            .any(|d| d.severity == Severity::Error),
        "leaky chain not flagged"
    );
    let out = leaky
        .run_batch(input_stream(3))
        .expect("leak is not an error");
    validate_scopes(&out).expect_err("leaked scope left output unbalanced");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Agreement between the analyzer and reality, both directions:
    /// accepted chains run clean, failing chains were flagged.
    #[test]
    fn verdict_matches_runtime(specs in prop::collection::vec(arb_spec(), 0..8), n in 1usize..4) {
        let mut p = Pipeline::new();
        for &spec in &specs {
            p.add(PoolOp::new(spec));
        }
        let accepted = !p
            .check_with(&input_options())
            .iter()
            .any(|d| d.severity == Severity::Error);

        // The reference batch driver performs no pre-flight analysis,
        // so this observes the chain's true runtime behavior.
        let outcome = p.run_batch(input_stream(n));
        let ran_clean = match &outcome {
            Ok(out) => validate_scopes(out).is_ok(),
            Err(_) => false,
        };

        if accepted {
            prop_assert!(
                ran_clean,
                "analyzer accepted {specs:?} but the run failed: {outcome:?}"
            );
        } else {
            // Rejection is allowed to be conservative (e.g. a dead
            // stage runs fine); nothing to assert here. The reverse
            // implication — failing chains were flagged — is exactly
            // the `accepted => ran_clean` assertion above.
        }
    }
}
