//! Fuzz battery for the incremental wire decoder (ISSUE satellite 1).
//!
//! Plain `cargo test` runs a bounded, fully deterministic number of
//! iterations; set `FUZZ_ITERS` to raise the budget (ci.sh runs a
//! fixed-seed smoke pass). Two input families are exercised:
//!
//! 1. **Arbitrary bytes** — pure noise fed to [`Decoder`] in random
//!    chunk sizes. The decoder must never panic and every failure must
//!    be a recoverable [`PipelineError::Codec`].
//! 2. **Mutated-valid streams** — well-formed mixed-version wires run
//!    through [`WireMangler`] (bit flips, truncation, garbage
//!    insertion, frame duplication/deletion), fed to both the raw
//!    [`Decoder`] and a full [`StreamIn`] session. The session layer
//!    must always terminate with balanced scopes (repairs included) and
//!    may only surface `Codec` errors.

use dynamic_river::codec::{write_eos, write_record_with, Decoder, SampleEncoding, WireFormat};
use dynamic_river::fault::WireMangler;
use dynamic_river::net::StreamIn;
use dynamic_river::record::{Payload, Record, RecordKind};
use dynamic_river::PipelineError;

/// Bounded iteration budget: deterministic by default, tunable via env.
fn fuzz_iters() -> u64 {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Asserts an error is the recoverable kind the decoder contract
/// promises for in-band byte corruption.
fn assert_codec(err: &PipelineError, context: &str) {
    assert!(
        matches!(err, PipelineError::Codec(_)),
        "{context}: expected Codec error, got {err}"
    );
}

/// Feeds `wire` to a fresh decoder in chunk sizes drawn from `rng`,
/// stopping at the first error (the decoder poisons itself). Returns
/// how many records decoded before the stream ended or failed.
fn drive_decoder(rng: &mut WireMangler, wire: &[u8], context: &str) -> usize {
    let mut dec = Decoder::new();
    let mut events = Vec::new();
    let mut records = 0usize;
    let mut rest = wire;
    while !rest.is_empty() {
        let n = (rng.next_u64() as usize % 64 + 1).min(rest.len());
        let (chunk, tail) = rest.split_at(n);
        rest = tail;
        events.clear();
        match dec.feed(chunk, &mut events) {
            Ok(()) => records += events.len(),
            Err(e) => {
                assert_codec(&e, context);
                // Poisoned decoders must keep failing, not panic.
                let again = dec.feed(tail, &mut events).unwrap_err();
                assert_codec(&again, context);
                return records;
            }
        }
    }
    if let Err(e) = dec.end_of_input() {
        assert!(
            matches!(e, PipelineError::Disconnected(_)),
            "{context}: end_of_input may only report truncation, got {e}"
        );
    }
    records
}

/// Builds a small, deterministic, well-formed stream mixing scopes,
/// payload shapes, and both wire versions.
fn valid_wire(rng: &mut WireMangler) -> Vec<u8> {
    let formats = [
        WireFormat::V1,
        WireFormat::V2(SampleEncoding::F64),
        WireFormat::V2(SampleEncoding::F32),
        WireFormat::V2(SampleEncoding::I16),
    ];
    let mut wire = Vec::new();
    let scopes = rng.next_u64() % 3 + 1;
    let mut seq = 0u64;
    for s in 0..scopes {
        let scope_type = (rng.next_u64() % 7) as u16;
        let mut push = |rec: &Record, rng: &mut WireMangler| {
            let format = formats[(rng.next_u64() % 4) as usize];
            write_record_with(&mut wire, rec, format).unwrap();
        };
        push(&Record::open_scope(scope_type, vec![]).with_seq(seq), rng);
        seq += 1;
        for i in 0..rng.next_u64() % 4 {
            let payload = match rng.next_u64() % 4 {
                0 => Payload::Empty,
                1 => Payload::f64(
                    (0..8)
                        .map(|k| (k + i) as f64 * 0.25 - s as f64)
                        .collect::<Vec<f64>>(),
                ),
                2 => Payload::Text(format!("clip-{s}-{i}")),
                _ => Payload::Bytes(rng.next_u64().to_le_bytes().to_vec().into()),
            };
            push(&Record::data((i + 1) as u16, payload).with_seq(seq), rng);
            seq += 1;
        }
        push(&Record::close_scope(scope_type).with_seq(seq), rng);
        seq += 1;
    }
    write_eos(&mut wire).unwrap();
    wire
}

/// Family 1: arbitrary bytes never panic the decoder and only ever
/// produce `Codec` errors.
#[test]
fn arbitrary_bytes_never_panic_and_fail_as_codec() {
    let mut rng = WireMangler::new(0xF00D);
    for round in 0..fuzz_iters() {
        let len = (rng.next_u64() % 512) as usize;
        let mut noise = Vec::with_capacity(len);
        while noise.len() < len {
            noise.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        noise.truncate(len);
        drive_decoder(&mut rng, &noise, &format!("noise round {round}"));
    }
}

/// Family 1b: noise that *starts* like a real frame (correct magic,
/// plausible header) stresses the header/varint paths specifically.
#[test]
fn magic_prefixed_noise_fails_as_codec() {
    let mut rng = WireMangler::new(0xBEEF);
    for round in 0..fuzz_iters() {
        let mut bytes = if rng.next_u64().is_multiple_of(2) {
            b"RVDR".to_vec()
        } else {
            vec![0xB2]
        };
        for _ in 0..rng.next_u64() % 8 {
            bytes.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        drive_decoder(&mut rng, &bytes, &format!("magic-noise round {round}"));
    }
}

/// Family 2: mangled valid streams never panic the raw decoder.
#[test]
fn mangled_streams_never_panic_decoder() {
    let mut rng = WireMangler::new(42);
    for round in 0..fuzz_iters() {
        let mut wire = valid_wire(&mut rng);
        for _ in 0..=rng.next_u64() % 3 {
            let how = rng.pick();
            wire = rng.mangle(&wire, how);
        }
        drive_decoder(&mut rng, &wire, &format!("mangled round {round}"));
    }
}

/// Family 2b: the full session layer over mangled wires. `StreamIn`
/// must terminate, repair unbalanced scopes, and surface only `Codec`
/// errors (truncation is absorbed into scope repair, not returned).
#[test]
fn mangled_streams_leave_sessions_balanced() {
    let mut rng = WireMangler::new(7);
    for round in 0..fuzz_iters() {
        let mut wire = valid_wire(&mut rng);
        let how = rng.pick();
        wire = rng.mangle(&wire, how);

        let mut streamin = StreamIn::new(std::io::Cursor::new(wire));
        let mut depth = 0i64;
        loop {
            match streamin.next_record() {
                Ok(Some(rec)) => match rec.kind {
                    RecordKind::OpenScope => depth += 1,
                    RecordKind::CloseScope | RecordKind::BadCloseScope => depth -= 1,
                    RecordKind::Data => {}
                },
                Ok(None) => break,
                Err(e) => {
                    assert_codec(&e, &format!("session round {round}"));
                    // After the error the session is over; the repair
                    // records the server would synthesize come from
                    // abort_repair, exactly like serve.rs does it.
                    for rec in streamin.abort_repair() {
                        assert_eq!(rec.kind, RecordKind::BadCloseScope);
                        depth -= 1;
                    }
                    break;
                }
            }
        }
        assert!(
            depth >= 0,
            "round {round}: more closes than opens escaped the tracker"
        );
        assert_eq!(depth, 0, "round {round}: unbalanced scopes after repair");
    }
}

/// The battery itself is deterministic: same seeds, same verdicts,
/// byte-for-byte identical mangled wires.
#[test]
fn fuzz_inputs_are_reproducible() {
    let make = || {
        let mut rng = WireMangler::new(1234);
        let wire = valid_wire(&mut rng);
        let how = rng.pick();
        rng.mangle(&wire, how)
    };
    assert_eq!(make(), make());
}
