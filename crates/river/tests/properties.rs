//! Property-based tests for Dynamic River: codec round trips, scope
//! repair invariants, and pipeline equivalence (batch vs streaming vs
//! threaded vs sharded).

use bytes::Bytes;
use dynamic_river::codec::{
    decode_frame, encode_frame, encode_frame_v2, encode_frame_with, write_eos, write_record,
    write_record_with, DecodeEvent, Decoder, SampleEncoding, WireFormat,
};
use dynamic_river::fault::{DropCloses, FailAfter, TruncateAfter};
use dynamic_river::net::StreamIn;
use dynamic_river::ops::{ScopeRepair, ScopeSum};
use dynamic_river::prelude::*;
use dynamic_river::scope::validate_scopes;
use proptest::prelude::*;

/// Sample buffers in every representation the payload model allows:
/// owned (offset 0) and non-trivial views (non-zero offset and/or a
/// length shorter than the backing allocation) — the codec must frame
/// both identically.
fn arb_sample_buf() -> impl Strategy<Value = SampleBuf> {
    (
        prop::collection::vec(-1e9f64..1e9, 0..64),
        0usize..16,
        0usize..16,
    )
        .prop_map(|(v, skip_front, skip_back)| {
            let buf = SampleBuf::from(v);
            let start = skip_front.min(buf.len());
            let end = buf.len() - skip_back.min(buf.len() - start);
            buf.slice(start..end)
        })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Empty),
        arb_sample_buf().prop_map(Payload::F64),
        // Complex payloads are interleaved (re, im) pairs by contract:
        // the codec rejects odd f64 counts on decode, so the strategy
        // trims views to an even length.
        arb_sample_buf().prop_map(|b| {
            let even = b.len() & !1;
            Payload::Complex(b.slice(..even))
        }),
        prop::collection::vec(any::<u8>(), 0..128).prop_map(|b| Payload::Bytes(Bytes::from(b))),
        "[a-zA-Z0-9 äöü]{0,40}".prop_map(Payload::Text),
        prop::collection::vec(("[a-z]{1,8}", "[a-z0-9]{0,12}"), 0..6).prop_map(|pairs| {
            Payload::Pairs(
                pairs
                    .into_iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            )
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        0u8..4,
        any::<u16>(),
        0u32..64,
        any::<u16>(),
        any::<u64>(),
        arb_payload(),
    )
        .prop_map(|(kind, subtype, depth, scope_type, seq, payload)| Record {
            kind: RecordKind::from_tag(kind).expect("tag in range"),
            subtype,
            scope_depth: depth,
            scope_type,
            seq,
            payload,
        })
}

/// A random but *structurally plausible* stream: opens and closes are
/// arbitrary, so scope repair has real work to do.
fn arb_stream() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(
        prop_oneof![
            3 => (any::<u16>(), prop::collection::vec(-100.0f64..100.0, 0..8))
                .prop_map(|(st, v)| Record::data(st, Payload::f64(v))),
            1 => (0u16..4).prop_map(|t| Record::open_scope(t, vec![])),
            1 => (0u16..4).prop_map(Record::close_scope),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any record round-trips exactly through the wire codec.
    #[test]
    fn codec_round_trip(rec in arb_record()) {
        let frame = encode_frame(&rec);
        let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
        prop_assert_eq!(decoded, rec);
        prop_assert_eq!(used, frame.len());
    }

    /// Encoding is canonical byte-for-byte: whatever the payload variant
    /// — including `SampleBuf` views with non-zero offsets — decoding a
    /// frame and re-encoding the result reproduces the identical bytes,
    /// so views and owned buffers are indistinguishable on the wire.
    #[test]
    fn codec_reencode_is_byte_identical(rec in arb_record()) {
        let frame = encode_frame(&rec);
        let (decoded, _) = decode_frame(&frame).unwrap().unwrap();
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    /// Every prefix of a frame asks for more bytes rather than erroring
    /// or mis-decoding.
    #[test]
    fn codec_prefix_safe(rec in arb_record(), frac in 0.0f64..1.0) {
        let frame = encode_frame(&rec);
        let cut = ((frame.len() as f64) * frac) as usize;
        if cut < frame.len() {
            prop_assert!(decode_frame(&frame[..cut]).unwrap().is_none());
        }
    }

    /// Single-bit corruption anywhere in the frame is always detected
    /// (CRC or structural check) — decode never silently returns a
    /// different record.
    #[test]
    fn codec_detects_bit_flips(rec in arb_record(), byte_idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut frame = encode_frame(&rec);
        let idx = byte_idx.index(frame.len());
        frame[idx] ^= 1 << bit;
        // Ok(None) (length field corrupted upward, more bytes
        // requested) and Err (corruption detected) both pass.
        if let Ok(Some((decoded, _))) = decode_frame(&frame) {
            prop_assert_eq!(decoded, rec, "corruption went unnoticed");
        }
    }

    /// Concatenated frames decode back to the original sequence.
    #[test]
    fn codec_stream_round_trip(records in prop::collection::vec(arb_record(), 0..20)) {
        let mut buf = Vec::new();
        for r in &records {
            write_record(&mut buf, r).unwrap();
        }
        write_eos(&mut buf).unwrap();
        let mut decoded = Vec::new();
        let mut offset = 0usize;
        loop {
            if buf[offset..].starts_with(b"RVEO") {
                break;
            }
            let (r, used) = decode_frame(&buf[offset..]).unwrap().unwrap();
            decoded.push(r);
            offset += used;
        }
        prop_assert_eq!(decoded, records);
    }

    /// ScopeRepair output always passes scope validation, whatever the
    /// input stream looks like.
    #[test]
    fn scope_repair_always_balances(stream in arb_stream()) {
        let mut p = Pipeline::new();
        p.add(ScopeRepair::new());
        let out = p.run(stream).unwrap();
        prop_assert!(validate_scopes(&out).is_ok());
    }

    /// StreamIn + repair over a randomly truncated byte stream always
    /// yields a balanced record sequence.
    #[test]
    fn streamin_repairs_truncated_streams(
        stream in arb_stream(),
        keep_frac in 0.0f64..1.0,
    ) {
        // Sanitize the stream first so it is well-formed at the sender.
        let mut p = Pipeline::new();
        p.add(ScopeRepair::new());
        let clean = p.run(stream).unwrap();

        let mut buf = Vec::new();
        for r in &clean {
            write_record(&mut buf, r).unwrap();
        }
        write_eos(&mut buf).unwrap();
        let cut = ((buf.len() as f64) * keep_frac) as usize;
        let truncated = &buf[..cut];

        let mut sink: Vec<Record> = Vec::new();
        let mut si = StreamIn::new(truncated);
        // Truncation may land mid-frame; that is an unclean end, not an
        // error.
        let _ = si.pump(&mut sink).unwrap();
        prop_assert!(validate_scopes(&sink).is_ok());
    }

    /// The fused streaming driver agrees record-for-record with the
    /// batch (stage-barrier) runner for arbitrary record streams —
    /// including scope records and operators that buffer until
    /// end-of-stream — and its counters account for every record.
    #[test]
    fn streaming_equals_batch(
        stream in arb_stream(),
        gain in -3.0f64..3.0,
        keep_even in any::<bool>(),
    ) {
        /// Holds everything until EOS, then replays — the worst case
        /// for flush-order equivalence.
        struct Buffering(Vec<Record>);
        impl Operator for Buffering {
            fn name(&self) -> &'static str {
                "buffering"
            }
            fn on_record(&mut self, r: Record, _out: &mut dyn Sink) -> Result<(), PipelineError> {
                self.0.push(r);
                Ok(())
            }
            fn on_eos(&mut self, out: &mut dyn Sink) -> Result<(), PipelineError> {
                for r in self.0.drain(..) {
                    out.push(r)?;
                }
                Ok(())
            }
        }
        let build = move || {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("gain", move |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x *= gain);
            }));
            p.add(Buffering(Vec::new()));
            if keep_even {
                p.add(RecordFilter::new("evens", |r: &Record| r.seq.is_multiple_of(2)));
            }
            p
        };
        let batch = build().run_batch(stream.clone()).unwrap();
        let mut streamed = Vec::new();
        let stats = build()
            .run_streaming(stream.clone().into_iter(), &mut streamed)
            .unwrap();
        prop_assert_eq!(&batch, &streamed);
        prop_assert_eq!(stats.source_records as usize, stream.len());
        prop_assert_eq!(stats.sink_records as usize, streamed.len());
        prop_assert_eq!(stats.stages[0].records_in as usize, stream.len());
        // The buffering stage's burst is its whole holdings — exactly
        // what the batch path would have materialized.
        prop_assert_eq!(stats.stages[1].peak_burst as usize, stream.len());
    }

    /// `run` (the streaming wrapper) and `run_count` agree with the
    /// batch reference for arbitrary streams.
    #[test]
    fn run_and_run_count_match_batch(stream in arb_stream(), keep_even in any::<bool>()) {
        let build = move || {
            let mut p = Pipeline::new();
            if keep_even {
                p.add(RecordFilter::new("evens", |r: &Record| r.seq.is_multiple_of(2)));
            }
            p.add(MapPayload::new("id", |_: &mut [f64]| {}));
            p
        };
        let batch = build().run_batch(stream.clone()).unwrap();
        prop_assert_eq!(&build().run(stream.clone()).unwrap(), &batch);
        prop_assert_eq!(build().run_count(stream).unwrap(), batch.len());
    }

    /// The threaded runner agrees with the synchronous runner for
    /// arbitrary map/filter chains.
    #[test]
    fn threaded_equals_sync(
        stream in arb_stream(),
        gain in -3.0f64..3.0,
        keep_even in any::<bool>(),
    ) {
        let build = move || {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("gain", move |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x *= gain);
            }));
            if keep_even {
                p.add(RecordFilter::new("evens", |r: &Record| r.seq.is_multiple_of(2)));
            }
            p
        };
        let sync_out = build().run(stream.clone()).unwrap();
        let threaded_out = build().run_threaded(stream).unwrap();
        prop_assert_eq!(sync_out, threaded_out);
    }

    /// The scope-sharded runner agrees record-for-record with the
    /// single-lane streaming driver — scope open/close ordering
    /// included — for random scope-local chains (stateless maps and
    /// filters plus a per-scope stateful summarizer) over arbitrary
    /// record streams, at every worker count from 1 to 8.
    #[test]
    fn sharded_equals_streaming(
        stream in arb_stream(),
        gain in -3.0f64..3.0,
        keep_even in any::<bool>(),
        with_sum in any::<bool>(),
        workers in 1usize..9,
    ) {
        let build = move || {
            let mut p = Pipeline::new();
            p.add(MapPayload::new("gain", move |v: &mut [f64]| {
                v.iter_mut().for_each(|x| *x *= gain);
            }));
            if keep_even {
                p.add(RecordFilter::new("evens", |r: &Record| r.seq.is_multiple_of(2)));
            }
            if with_sum {
                p.add(ScopeSum::new(999));
            }
            p
        };
        let mut single = Vec::new();
        let single_stats = build()
            .run_streaming(stream.clone().into_iter(), &mut single)
            .unwrap();
        let mut sharded = Vec::new();
        let sharded_stats = build()
            .run_sharded(stream.into_iter(), &mut sharded, workers)
            .unwrap();
        prop_assert_eq!(&single, &sharded);
        prop_assert_eq!(single_stats.source_records, sharded_stats.source_records);
        prop_assert_eq!(single_stats.sink_records, sharded_stats.sink_records);
        prop_assert_eq!(single_stats.sink_bytes, sharded_stats.sink_bytes);
    }

    /// Fault injection through the sharded runner: a `DropCloses` or
    /// `TruncateAfter` upstream fault leaves scopes dangling, and the
    /// per-shard `ScopeRepair` must synthesize exactly the
    /// `BadCloseScope` records the single-lane path emits — same
    /// records, same positions.
    #[test]
    fn sharded_scope_repair_matches_single_lane(
        stream in arb_stream(),
        drop_every in 1u64..4,
        truncate in any::<bool>(),
        keep in 0usize..64,
        workers in 1usize..9,
    ) {
        // Sanitize, then inject the fault upstream of both runners so
        // they see the identical damaged stream.
        let mut sanitize = Pipeline::new();
        sanitize.add(ScopeRepair::new());
        let clean = sanitize.run(stream).unwrap();
        let mut injector = Pipeline::new();
        if truncate {
            injector.add(TruncateAfter::new(keep as u64));
        } else {
            injector.add(DropCloses::every(drop_every));
        }
        let damaged = injector.run(clean).unwrap();

        let build = || {
            let mut p = Pipeline::new();
            p.add(ScopeRepair::new());
            p.add(ScopeSum::new(999));
            p
        };
        let mut single = Vec::new();
        build()
            .run_streaming(damaged.clone().into_iter(), &mut single)
            .unwrap();
        let mut sharded = Vec::new();
        build()
            .run_sharded(damaged.into_iter(), &mut sharded, workers)
            .unwrap();
        prop_assert_eq!(&single, &sharded);
        prop_assert!(validate_scopes(&sharded).is_ok());
        let single_bad = single.iter().filter(|r| r.kind == RecordKind::BadCloseScope).count();
        let sharded_bad = sharded.iter().filter(|r| r.kind == RecordKind::BadCloseScope).count();
        prop_assert_eq!(single_bad, sharded_bad);
    }

    /// Differential v1 ↔ v2: for any record — offset `SampleBuf` views,
    /// every scope type, empty payloads — the lossless v2 frame decodes
    /// to exactly the record the v1 frame decodes to, and v2 encoding is
    /// canonical (decode → re-encode is byte-identical).
    #[test]
    fn v2_lossless_decodes_identically_to_v1(rec in arb_record()) {
        let v1 = encode_frame(&rec);
        let v2 = encode_frame_v2(&rec, SampleEncoding::F64);
        let (from_v1, used1) = decode_frame(&v1).unwrap().unwrap();
        let (from_v2, used2) = decode_frame(&v2).unwrap().unwrap();
        prop_assert_eq!(used1, v1.len());
        prop_assert_eq!(used2, v2.len());
        prop_assert_eq!(&from_v1, &from_v2);
        prop_assert_eq!(&from_v1, &rec);
        prop_assert_eq!(encode_frame_v2(&from_v2, SampleEncoding::F64), v2);
    }

    /// The f32 encoding loses exactly the bits `f64 → f32 → f64` loses,
    /// nothing more: each decoded sample equals its f32-rounded source.
    #[test]
    fn v2_f32_samples_round_to_f32_exactly(rec in arb_record()) {
        let frame = encode_frame_v2(&rec, SampleEncoding::F32);
        let (decoded, _) = decode_frame(&frame).unwrap().unwrap();
        let pairs = |p: &Payload| -> Option<(Vec<f64>, Vec<f64>)> {
            match p {
                Payload::F64(b) | Payload::Complex(b) => Some((b.to_vec(), Vec::new())),
                _ => None,
            }
        };
        if let (Some((orig, _)), Some((got, _))) = (pairs(&rec.payload), pairs(&decoded.payload)) {
            prop_assert_eq!(orig.len(), got.len());
            for (a, b) in orig.iter().zip(got.iter()) {
                prop_assert_eq!(f64::from(*a as f32).to_bits(), b.to_bits());
            }
        } else {
            // Non-sample payloads are lossless under every encoding.
            prop_assert_eq!(decoded, rec);
        }
    }

    /// The i16 encoding's absolute error is bounded by `scale / 2` with
    /// `scale = max|x| / 32767`, per record.
    #[test]
    fn v2_i16_error_stays_within_half_scale(rec in arb_record()) {
        let frame = encode_frame_v2(&rec, SampleEncoding::I16);
        let (decoded, _) = decode_frame(&frame).unwrap().unwrap();
        let samples = |p: &Payload| -> Option<Vec<f64>> {
            match p {
                Payload::F64(b) | Payload::Complex(b) => Some(b.to_vec()),
                _ => None,
            }
        };
        if let (Some(orig), Some(got)) = (samples(&rec.payload), samples(&decoded.payload)) {
            prop_assert_eq!(orig.len(), got.len());
            let max = orig.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
            let bound = max / f64::from(i16::MAX) / 2.0 * (1.0 + 1e-9);
            for (a, b) in orig.iter().zip(got.iter()) {
                prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
            }
        } else {
            prop_assert_eq!(decoded, rec);
        }
    }

    /// Chunking invariance: however a mixed-version byte stream is
    /// split, the incremental decoder yields the identical record
    /// sequence and clean end.
    #[test]
    fn decoder_chunking_invariant(
        records in prop::collection::vec(arb_record(), 0..12),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..9),
        enc_pick in any::<u8>(),
    ) {
        let mut wire = Vec::new();
        for (i, r) in records.iter().enumerate() {
            let format = match (i + enc_pick as usize) % 4 {
                0 => WireFormat::V1,
                1 => WireFormat::V2(SampleEncoding::F64),
                2 => WireFormat::V2(SampleEncoding::F32),
                _ => WireFormat::V2(SampleEncoding::I16),
            };
            write_record_with(&mut wire, r, format).unwrap();
        }
        write_eos(&mut wire).unwrap();

        // Reference: one whole-stream feed.
        let mut reference = Vec::new();
        Decoder::new().feed(&wire, &mut reference).unwrap();

        // Arbitrary split points (duplicates and 0 collapse harmlessly).
        let mut points: Vec<usize> = cuts.iter().map(|c| c.index(wire.len() + 1)).collect();
        points.push(0);
        points.push(wire.len());
        points.sort_unstable();
        let mut chunked = Vec::new();
        let mut dec = Decoder::new();
        for pair in points.windows(2) {
            dec.feed(&wire[pair[0]..pair[1]], &mut chunked).unwrap();
        }
        prop_assert_eq!(&chunked, &reference);
        prop_assert_eq!(chunked.len(), records.len() + 1);
        prop_assert!(matches!(chunked.last(), Some(DecodeEvent::CleanEnd)));
    }

    /// Single-bit corruption in a v2 frame is always detected — decode
    /// never silently yields a different record, and every failure is a
    /// recoverable `Codec` error (never a panic, never `Io`).
    #[test]
    fn v2_detects_bit_flips_recoverably(
        rec in arb_record(),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut frame = encode_frame_with(&rec, WireFormat::V2(SampleEncoding::F64));
        let idx = byte_idx.index(frame.len());
        frame[idx] ^= 1 << bit;
        match decode_frame(&frame) {
            Ok(Some((decoded, _))) => prop_assert_eq!(decoded, rec, "corruption went unnoticed"),
            Ok(None) => {} // length field corrupted upward: more bytes requested
            Err(e) => {
                let is_codec = matches!(e, PipelineError::Codec(_));
                prop_assert!(is_codec, "non-codec error from pure bytes: {}", e);
            }
        }
    }

    /// A crashing operator (`FailAfter`) aborts the sharded run with an
    /// operator error, like the single-lane driver.
    #[test]
    fn sharded_fail_after_aborts(
        stream in arb_stream(),
        fail_at in 0u64..32,
        workers in 1usize..5,
    ) {
        // Only meaningful when the fault actually fires (the shim has
        // no prop_assume; a plain guard serves).
        if stream.len() as u64 > fail_at {
            let build = || {
                let mut p = Pipeline::new();
                p.add(FailAfter::new(fail_at));
                p
            };
            let single_err = build()
                .run_streaming(stream.clone().into_iter(), &mut NullSink)
                .unwrap_err();
            // Bound to a name first: the assert macro embeds the
            // expression in a format string, where `{ .. }` is invalid.
            let single_is_operator_error = matches!(single_err, PipelineError::Operator { .. });
            prop_assert!(single_is_operator_error);
            // Sharded: each worker's FailAfter counts its own shard's
            // records, so with several workers the countdown may never
            // elapse on any one shard. With one worker it must abort
            // exactly like the single lane; with more, a completed run
            // means every record flowed.
            match build().run_sharded(stream.clone().into_iter(), &mut NullSink, workers) {
                Err(e) => {
                    let is_operator_error = matches!(e, PipelineError::Operator { .. });
                    prop_assert!(is_operator_error);
                }
                Ok(stats) => {
                    prop_assert!(workers > 1);
                    prop_assert_eq!(stats.source_records as usize, stream.len());
                }
            }
        }
    }
}
