//! End-to-end coverage of the event-driven service layer (DESIGN.md
//! §17): many slow clients multiplexed over a small worker pool, idle
//! reaping vs. keepalive, and byte-identity with the single-lane
//! streaming driver.
//!
//! These tests drive [`PipelineServer`] exactly the way an archive
//! deployment would — fleets of mostly-idle sensors dripping framed
//! records at their own pace — and hold the server to the strongest
//! available oracle: each session's sink output must be *identical* to
//! running that client's records through
//! [`Pipeline::run_streaming`] on a single lane.

use dynamic_river::codec::{encode_frame, write_eos, write_keepalive, write_record};
use dynamic_river::net::StreamEnd;
use dynamic_river::prelude::*;
use dynamic_river::serve::PipelineServer;
use dynamic_river::telemetry::{EventKind, TelemetryConfig};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// The chain under service: tags every sample so output provenance is
/// visible, and is cheap enough that 100 sessions finish promptly.
fn doubling_chain() -> Pipeline {
    let mut p = Pipeline::new();
    p.add(MapPayload::new("double", |v: &mut [f64]| {
        v.iter_mut().for_each(|x| *x *= 2.0);
    }));
    p
}

/// One client's clip: a scope around `n` tagged data records.
fn clip(tag: f64, n: usize) -> Vec<Record> {
    let mut v = vec![Record::open_scope(1, vec![])];
    for i in 0..n {
        v.push(
            Record::data(0, Payload::f64(vec![tag, i as f64, tag + i as f64])).with_seq(i as u64),
        );
    }
    v.push(Record::close_scope(1));
    v
}

/// The full wire image of a clip: every frame plus the EOS sentinel.
fn wire_image(records: &[Record]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for r in records {
        bytes.extend_from_slice(&encode_frame(r));
    }
    write_eos(&mut bytes).unwrap();
    bytes
}

/// What the single-lane streaming driver produces for these records —
/// the byte-identity oracle for every multiplexed session.
fn single_lane(records: &[Record]) -> Vec<Record> {
    let mut expected = Vec::new();
    doubling_chain()
        .run_streaming(records.iter().cloned(), &mut expected)
        .unwrap();
    expected
}

type Outputs = Arc<Mutex<Vec<(u64, SharedSink)>>>;

fn start_collecting(server: PipelineServer, listener: TcpListener) -> (ServerHandle, Outputs) {
    let outputs: Outputs = Arc::new(Mutex::new(Vec::new()));
    let registry = Arc::clone(&outputs);
    let handle = server
        .start(listener, move |info| {
            let sink = SharedSink::new();
            registry.lock().unwrap().push((info.id, sink.clone()));
            Box::new(sink)
        })
        .unwrap();
    (handle, outputs)
}

#[test]
fn hundred_slow_drip_clients_multiplex_over_four_workers() {
    const CLIENTS: usize = 100;
    const WORKERS: usize = 4;

    let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
    server.set_max_sessions(CLIENTS + 8).set_workers(WORKERS);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let (handle, outputs) = start_collecting(server, listener);
    let addr = handle.local_addr();

    // Every client connects up front (forcing genuine multiplexing:
    // far more open sockets than workers), then drips its wire image
    // in small ragged chunks with pauses — the mostly-idle sensor
    // shape the event loop exists for.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let records = clip(c as f64 + 1.0, 4 + c % 3);
                let image = wire_image(&records);
                let mut stream = TcpStream::connect(addr).unwrap();
                // Chunk size varies per client so frame boundaries land
                // everywhere in the decode state machine.
                for chunk in image.chunks(5 + c % 11) {
                    stream.write_all(chunk).unwrap();
                    stream.flush().unwrap();
                    thread::sleep(Duration::from_micros(300));
                }
                records
            })
        })
        .collect();
    let sent: Vec<Vec<Record>> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    handle.wait_for_completed(CLIENTS as u64);
    let report = handle.shutdown().unwrap();

    assert_eq!(report.sessions.len(), CLIENTS);
    assert_eq!(report.clean_sessions(), CLIENTS);
    // Capacity and pool width are reported separately — M sessions
    // really were multiplexed over N=4 workers.
    assert_eq!(report.workers, WORKERS);
    assert_eq!(report.session_capacity, CLIENTS + 8);
    assert!(
        report.peak_sessions > WORKERS,
        "peak {} should exceed the {} workers",
        report.peak_sessions,
        WORKERS
    );

    // Byte-identity per session: output equals the single-lane
    // streaming driver on exactly one client's records.
    let expected: Vec<Vec<Record>> = sent.iter().map(|r| single_lane(r)).collect();
    let outputs = outputs.lock().unwrap();
    assert_eq!(outputs.len(), CLIENTS);
    let mut matched = [false; CLIENTS];
    for (id, sink) in outputs.iter() {
        let got = sink.take();
        let hit = expected
            .iter()
            .enumerate()
            .find(|(i, e)| !matched[*i] && **e == got);
        let (i, _) = hit.unwrap_or_else(|| panic!("session {id} output matches no client"));
        matched[i] = true;
    }
    let total: u64 = report.sessions.iter().map(|s| s.received).sum();
    assert_eq!(total as usize, sent.iter().map(Vec::len).sum::<usize>());
}

#[test]
fn one_byte_drip_is_byte_identical_to_single_lane() {
    let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
    server.set_workers(1);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let (handle, outputs) = start_collecting(server, listener);
    let addr = handle.local_addr();

    // The pathological fragmentation case: every read the event loop
    // sees is a single byte, so every header, varint, payload and CRC
    // boundary is split.
    let records = clip(42.0, 6);
    let image = wire_image(&records);
    let mut stream = TcpStream::connect(addr).unwrap();
    for byte in &image {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    drop(stream);

    handle.wait_for_completed(1);
    let report = handle.shutdown().unwrap();
    assert_eq!(report.clean_sessions(), 1);
    assert_eq!(report.sessions[0].wire_bytes, image.len() as u64);
    let outputs = outputs.lock().unwrap();
    assert_eq!(outputs[0].1.take(), single_lane(&records));
}

#[test]
fn idle_session_is_reaped_while_keepalive_pinger_survives() {
    let mut pipeline = doubling_chain();
    pipeline.set_telemetry(TelemetryConfig::Full);
    let mut server = PipelineServer::from_pipeline(&pipeline).unwrap();
    server
        .set_max_sessions(4)
        .set_workers(2)
        .set_idle_timeout(Duration::from_millis(400));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let (handle, outputs) = start_collecting(server, listener);
    let addr = handle.local_addr();

    // Session 1 goes silent mid-clip: open scope, one record, then
    // nothing — but the socket stays open, so only the idle reaper
    // (not disconnect repair) can end it.
    let mut silent = TcpStream::connect(addr).unwrap();
    write_record(&mut silent, &Record::open_scope(9, vec![])).unwrap();
    write_record(&mut silent, &Record::data(0, Payload::f64(vec![5.0]))).unwrap();
    silent.flush().unwrap();

    // Session 2 is dormant-but-alive: it pings keepalives through a
    // stretch far longer than the idle timeout, then finishes its clip
    // cleanly.
    let pinger = thread::spawn(move || {
        let records = vec![
            Record::open_scope(3, vec![]),
            Record::data(0, Payload::f64(vec![7.0])),
            Record::close_scope(3),
        ];
        let mut stream = TcpStream::connect(addr).unwrap();
        write_record(&mut stream, &records[0]).unwrap();
        write_record(&mut stream, &records[1]).unwrap();
        stream.flush().unwrap();
        for _ in 0..10 {
            thread::sleep(Duration::from_millis(80));
            write_keepalive(&mut stream).unwrap();
        }
        write_record(&mut stream, &records[2]).unwrap();
        write_eos(&mut stream).unwrap();
        stream.flush().unwrap();
        records
    });

    // Both sessions complete: the pinger by its own EOS, the silent
    // one by the reaper (without the reaper this wait would hang).
    handle.wait_for_completed(2);
    let pinger_records = pinger.join().unwrap();
    let report = handle.shutdown().unwrap();
    drop(silent);

    assert_eq!(report.sessions.len(), 2);
    let reaped = report
        .sessions
        .iter()
        .find(|s| s.error.is_some())
        .expect("one session should have been reaped");
    let alive = report
        .sessions
        .iter()
        .find(|s| s.error.is_none())
        .expect("one session should have survived");

    // The silent session: reaped with an idle-timeout error, its open
    // scope repaired through its chain, and the timeout visible in its
    // telemetry lane alongside the session error.
    let err = reaped.error.as_deref().unwrap();
    assert!(err.contains("idle timeout"), "got: {err}");
    assert_eq!(reaped.end, StreamEnd::Unclean { repaired_scopes: 1 });
    assert_eq!(reaped.received, 2);
    assert!(reaped
        .telemetry
        .events
        .iter()
        .any(|e| e.kind == EventKind::SessionTimeout));
    assert!(reaped
        .telemetry
        .events
        .iter()
        .any(|e| e.kind == EventKind::SessionError));

    // The pinger: clean, with its keepalives counted and reported, and
    // no timeout events in its lane.
    assert!(alive.is_clean(), "pinger should survive: {:?}", alive.error);
    assert!(alive.keepalives >= 5, "keepalives: {}", alive.keepalives);
    assert!(alive
        .telemetry
        .events
        .iter()
        .any(|e| e.kind == EventKind::SessionKeepalive));
    assert!(alive
        .telemetry
        .events
        .iter()
        .all(|e| e.kind != EventKind::SessionTimeout));

    // Scope hygiene in both sinks: the reaped session's output ends
    // with the synthesized BadCloseScope; the pinger's output matches
    // the single-lane driver exactly, with no trace of its keepalives
    // (they are wire liveness, not records).
    for (id, sink) in outputs.lock().unwrap().iter() {
        let got = sink.take();
        dynamic_river::scope::validate_scopes(&got).unwrap();
        if *id == reaped.id {
            assert_eq!(got.last().unwrap().kind, RecordKind::BadCloseScope);
        } else {
            assert_eq!(got, single_lane(&pinger_records));
        }
    }
}

#[test]
fn capacity_and_workers_are_reported_separately() {
    let mut server = PipelineServer::from_pipeline(&doubling_chain()).unwrap();
    server.set_max_sessions(64).set_workers(3);
    assert_eq!(server.max_sessions(), 64);
    assert_eq!(server.workers(), 3);
    assert_eq!(server.idle_timeout(), None);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = server.start(listener, |_| Box::new(NullSink)).unwrap();
    let report = handle.shutdown().unwrap();
    assert_eq!(report.session_capacity, 64);
    assert_eq!(report.workers, 3);
    assert_eq!(report.peak_sessions, 0);
    assert!(report.sessions.is_empty());
}
