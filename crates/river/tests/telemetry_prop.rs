//! Property tests for telemetry snapshot merging plus the sharded
//! telemetry parity guarantee (ISSUE 9 satellite 3).
//!
//! 1. [`Snapshot::merge`] is associative, and commutative up to stage
//!    ordering (stages are keyed by name; the left operand's order
//!    wins, so commuting the operands may permute the stage list but
//!    never its contents). Event lists merge as multisets under the
//!    total `Ord` on [`TelemetryEvent`], so they are order-insensitive
//!    exactly.
//! 2. Histograms merge bucket-wise: every bucket of the merge is the
//!    sum of the operands' buckets, counts add, maxima take the max.
//! 3. A scope-sharded run (workers = 4) records into one shared
//!    registry, so its merged per-stage totals — record counts, drop
//!    counts, bucket-count sums — equal a single-lane run's over the
//!    same input, and the scope-event multiset (kind, subject) is
//!    identical modulo interleave.

use dynamic_river::prelude::*;
use dynamic_river::shard::ShardedPipeline;
use dynamic_river::telemetry::{
    EventKind, HistogramSnapshot, Snapshot, StageSnapshot, TelemetryEvent, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// Stage-name pool: small so generated snapshots overlap by name and
/// the by-name merge path is actually exercised.
const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

fn arb_hist() -> impl Strategy<Value = HistogramSnapshot> {
    proptest::collection::vec((0usize..HISTOGRAM_BUCKETS, 1u64..100), 0..6).prop_map(|entries| {
        let mut h = HistogramSnapshot::default();
        for (bucket, n) in entries {
            h.buckets[bucket] += n;
            h.count += n;
            // Attribute a plausible latency mass to the bucket so
            // `sum_ns`/`max_ns` merge non-trivially (capped so the
            // merge-addition property itself cannot overflow).
            let ns = 1u64 << bucket.min(32);
            h.sum_ns += ns * n;
            h.max_ns = h.max_ns.max(ns);
        }
        h
    })
}

fn arb_event() -> impl Strategy<Value = TelemetryEvent> {
    let kind = prop_oneof![
        Just(EventKind::ScopeOpen),
        Just(EventKind::ScopeClose),
        Just(EventKind::TriggerFire),
        Just(EventKind::StallEnter),
        Just(EventKind::SessionDrain),
    ];
    (0u64..50, kind, 0u64..4, 0u64..100).prop_map(|(seq, kind, lane, subject)| TelemetryEvent {
        seq,
        kind,
        lane,
        subject,
    })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec((any::<bool>(), arb_hist(), 0u64..5), NAMES.len()),
        proptest::collection::vec(arb_event(), 0..8),
        0u64..5,
    )
        .prop_map(|(stages, events, events_dropped)| Snapshot {
            stages: NAMES
                .iter()
                .zip(stages)
                .filter(|(_, (present, _, _))| *present)
                .map(|(name, (_, latency, drops))| StageSnapshot {
                    name: (*name).to_string(),
                    latency,
                    drops,
                })
                .collect(),
            events,
            events_dropped,
        })
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// Stage order is merge-argument-order dependent by design; sort by
/// name before comparing commuted merges.
fn by_name(mut s: Snapshot) -> Snapshot {
    s.stages.sort_by(|a, b| a.name.cmp(&b.name));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_associative(a in arb_snapshot(), b in arb_snapshot(), c in arb_snapshot()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_is_commutative_up_to_stage_order(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(by_name(merged(&a, &b)), by_name(merged(&b, &a)));
    }

    #[test]
    fn histograms_merge_bucket_wise(a in arb_hist(), b in arb_hist()) {
        let mut m = a.clone();
        m.merge(&b);
        for i in 0..HISTOGRAM_BUCKETS {
            prop_assert_eq!(m.buckets[i], a.buckets[i] + b.buckets[i]);
        }
        prop_assert_eq!(m.count, a.count + b.count);
        prop_assert_eq!(m.sum_ns, a.sum_ns + b.sum_ns);
        prop_assert_eq!(m.max_ns, a.max_ns.max(b.max_ns));
    }

    #[test]
    fn percentiles_are_monotone(h in arb_hist()) {
        prop_assert!(h.p50_ns() <= h.p90_ns());
        prop_assert!(h.p90_ns() <= h.p99_ns());
    }
}

/// A cloneable two-stage chain: a mapper plus a filter that drops every
/// odd-seq data record (so per-stage drop accounting is exercised too).
fn chain() -> Pipeline {
    let mut p = Pipeline::new();
    p.add(MapPayload::new("gain", |v: &mut [f64]| {
        v.iter_mut().for_each(|x| *x *= 2.0);
    }));
    p.add(RecordFilter::new("decimate", |r: &Record| {
        r.kind != RecordKind::Data || r.seq.is_multiple_of(2)
    }));
    p
}

/// Eight top-level scope units of sixteen data records each — enough
/// units for every one of four workers to see work.
fn units() -> Vec<Record> {
    let mut v = Vec::new();
    for unit in 0..8u64 {
        v.push(Record::open_scope(1, vec![]));
        for i in 0..16u64 {
            v.push(Record::data(0, Payload::f64(vec![unit as f64, i as f64])).with_seq(i));
        }
        v.push(Record::close_scope(1));
    }
    v
}

/// Scope-event multiset: (kind, subject) pairs, order-normalized.
fn scope_events(s: &Snapshot) -> Vec<(EventKind, u64)> {
    let mut v: Vec<(EventKind, u64)> = s
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ScopeOpen | EventKind::ScopeClose))
        .map(|e| (e.kind, e.subject))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn sharded_merged_telemetry_equals_single_lane_totals() {
    // Single-lane reference run.
    let mut single = chain();
    single.set_telemetry(TelemetryConfig::Full);
    let mut lane_out = Vec::new();
    single
        .run_streaming(units().into_iter(), &mut lane_out)
        .unwrap();
    let lane = single.telemetry_snapshot();

    // Sharded run: four workers sharing one registry.
    let mut proto = chain();
    proto.set_telemetry(TelemetryConfig::Full);
    let sharded = ShardedPipeline::from_pipeline(&proto, 4).unwrap();
    let telemetry = sharded.telemetry();
    let mut shard_out = Vec::new();
    sharded.run(units().into_iter(), &mut shard_out).unwrap();
    let merged = telemetry.snapshot();

    // Output parity is the existing sharding guarantee; telemetry
    // parity rides on it.
    assert_eq!(shard_out, lane_out);

    // Per-stage totals: same stages, same record counts, same drop
    // counts, and every histogram's bucket counts sum to its total.
    assert_eq!(
        merged.stages.iter().map(|s| &s.name).collect::<Vec<_>>(),
        lane.stages.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    for (m, l) in merged.stages.iter().zip(&lane.stages) {
        assert_eq!(m.latency.count, l.latency.count, "stage {}", m.name);
        assert_eq!(m.drops, l.drops, "stage {}", m.name);
        assert_eq!(m.latency.buckets.iter().sum::<u64>(), m.latency.count);
        assert_eq!(l.latency.buckets.iter().sum::<u64>(), l.latency.count);
    }
    // The filter dropped the 8 odd-seq records per unit in both runs.
    let decimate = &merged.stages[1];
    assert_eq!(decimate.drops, 8 * 8);

    // Scope events are emitted where records enter the run (driver or
    // splitter), so the multisets match modulo interleave.
    assert_eq!(scope_events(&merged), scope_events(&lane));
    assert!(!scope_events(&lane).is_empty());

    // The sharded run additionally traces its unit lifecycle: every
    // dispatched unit was merged back.
    let dispatched = merged
        .events
        .iter()
        .filter(|e| e.kind == EventKind::ShardUnitDispatched)
        .count();
    let merged_units = merged
        .events
        .iter()
        .filter(|e| e.kind == EventKind::ShardUnitMerged)
        .count();
    assert_eq!(dispatched, 8);
    assert_eq!(merged_units, 8);
}
