//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the wire codec and record payloads use:
//! [`Bytes`] (cheaply cloneable immutable bytes), [`BytesMut`] (a growable
//! buffer) and the [`BufMut`] little-endian `put_*` methods. No views,
//! splitting or refcount tricks — `Bytes` is an `Arc<[u8]>` underneath.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte storage.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied; this shim has no zero-copy path).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        Bytes::from(v.buf)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer with little-endian append helpers.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Converts into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian append operations for byte buffers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_eq() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.to_vec(), b"hello".to_vec());
        let c = a.clone();
        assert_eq!(c, a);
    }

    #[test]
    fn bytes_debug_is_escaped() {
        let b = Bytes::copy_from_slice(&[0x68, 0x69, 0x00]);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\"");
    }

    #[test]
    fn bytes_mut_put_helpers() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(1);
        m.put_u16_le(0x0203);
        m.put_u32_le(0x0405_0607);
        m.put_u64_le(0x0808_0808_0808_0808);
        m.put_f64_le(1.0);
        m.put_f32_le(2.0);
        m.put_i16_le(-2);
        m.extend_from_slice(b"xy");
        assert_eq!(m.len(), 1 + 2 + 4 + 8 + 8 + 4 + 2 + 2);
        assert_eq!(m[0], 1);
        assert_eq!(&m[1..3], &[0x03, 0x02]);
        let frozen = m.clone().freeze();
        assert_eq!(frozen.to_vec(), m.to_vec());
    }
}
