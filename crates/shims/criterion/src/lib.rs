//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! `ensemble_bench` benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`Throughput`], [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! No statistics, warm-up tuning, plots or HTML reports — each benchmark
//! is timed over a few auto-scaled batches and the best per-iteration
//! time is printed, which is enough to compare hot paths between
//! commits. Passing `--bench-fast` (or setting `CRITERION_FAST=1`) caps
//! measurement at one batch for CI smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a group; reported per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's two-part id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter id, used inside a named group.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Best observed per-iteration time.
    best: Option<Duration>,
    fast: bool,
}

impl Bencher {
    /// Times `routine`, auto-scaling the batch size so the measured
    /// window is long enough for the clock to resolve.
    ///
    /// The name mirrors the real criterion API, not `Iterator`.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters: u64 = 1;
        let budget = if self.fast {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(200)
        };
        let deadline = Instant::now() + budget;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            let per_iter = elapsed / iters as u32;
            self.best = Some(match self.best {
                Some(b) if b <= per_iter => b,
                _ => per_iter,
            });
            if Instant::now() >= deadline || self.fast && elapsed > Duration::ZERO {
                break;
            }
            if elapsed < Duration::from_millis(5) {
                iters = iters.saturating_mul(4).max(2);
            }
        }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("CRITERION_FAST").is_some() || std::env::args().any(|a| a == "--bench-fast")
}

fn report(group: &str, id: &str, best: Option<Duration>, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        id.to_string()
    } else if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    match best {
        Some(t) => {
            let ns = t.as_secs_f64() * 1e9;
            let rate = throughput.map(|tp| match tp {
                Throughput::Elements(n) => {
                    format!("  ({:.1} Melem/s)", n as f64 / t.as_secs_f64() / 1e6)
                }
                Throughput::Bytes(n) => {
                    format!(
                        "  ({:.1} MiB/s)",
                        n as f64 / t.as_secs_f64() / (1 << 20) as f64
                    )
                }
            });
            println!(
                "bench  {name:<48} {ns:>14.1} ns/iter{}",
                rate.unwrap_or_default()
            );
        }
        None => println!("bench  {name:<48}        (not measured)"),
    }
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            best: None,
            fast: fast_mode(),
        };
        f(&mut b);
        report("", &id.to_string(), b.best, None);
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; this harness has no sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness auto-scales timing.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            best: None,
            fast: fast_mode(),
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.best, self.throughput);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            best: None,
            fast: fast_mode(),
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.best, self.throughput);
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| black_box(2u64 + 2));
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }
}
