//! Offline stand-in for the `crossbeam` crate (channel module only).
//!
//! Implements MPMC [`channel::bounded`] / [`channel::unbounded`] channels
//! over `Mutex` + `Condvar`. Both [`channel::Sender`] and
//! [`channel::Receiver`] are cloneable; disconnection is tracked by
//! endpoint counts. A capacity of 0 creates a rendezvous channel, like
//! crossbeam's: `send` returns only after a receiver has taken the
//! message, which the segment-relocation tests rely on for deterministic
//! command interleaving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        /// Each queued message carries a unique ticket so a rendezvous
        /// sender can tell whether *its* message was taken, even when
        /// other blocked senders withdraw theirs first.
        queue: VecDeque<(u64, T)>,
        senders: usize,
        receivers: usize,
        next_ticket: u64,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Sender::try_send`]; carries the unsent
    /// message.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full (or a rendezvous channel with no waiting
        /// receiver guaranteed — the shim treats rendezvous channels as
        /// always full, since a rendezvous send always blocks).
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full channel (backpressure).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Creates an unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel: sends block while `cap` messages are
    /// queued. `cap == 0` creates a rendezvous channel where each send
    /// completes only when a receiver takes the message.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                next_ticket: 0,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] with the value when every receiver has
        /// been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let inner = &self.inner;
            let mut state = inner.state.lock().expect("channel poisoned");
            if inner.capacity == Some(0) {
                // Rendezvous: enqueue, then wait until *this* message
                // (identified by ticket, not queue position — other
                // blocked senders may withdraw theirs first) is taken.
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let ticket = state.next_ticket;
                state.next_ticket += 1;
                state.queue.push_back((ticket, value));
                inner.not_empty.notify_one();
                loop {
                    let mine = state.queue.iter().position(|(t, _)| *t == ticket);
                    match mine {
                        None => return Ok(()), // a receiver took it
                        Some(idx) if state.receivers == 0 => {
                            // No receiver will ever take it; withdraw it.
                            let (_, value) = state.queue.remove(idx).expect("position just found");
                            return Err(SendError(value));
                        }
                        Some(_) => {
                            state = inner.not_full.wait(state).expect("channel poisoned");
                        }
                    }
                }
            }
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = inner.not_full.wait(state).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            state.queue.push_back((ticket, value));
            drop(state);
            inner.not_empty.notify_one();
            Ok(())
        }

        /// Sends `value` without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel is at capacity
        /// (a rendezvous channel always reports full: its sends always
        /// block until a receiver takes the message), or
        /// [`TrySendError::Disconnected`] when every receiver has been
        /// dropped. Both carry the unsent value.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let inner = &self.inner;
            let mut state = inner.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            match inner.capacity {
                Some(0) => return Err(TrySendError::Full(value)),
                Some(cap) if state.queue.len() >= cap => {
                    return Err(TrySendError::Full(value));
                }
                _ => {}
            }
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            state.queue.push_back((ticket, value));
            drop(state);
            inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &self.inner;
            let mut state = inner.state.lock().expect("channel poisoned");
            loop {
                if let Some((_, value)) = state.queue.pop_front() {
                    drop(state);
                    // notify_all: rendezvous senders each wait for their
                    // own ticket, so every waiter must re-check.
                    inner.not_full.notify_all();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = inner.not_empty.wait(state).expect("channel poisoned");
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued yet,
        /// [`TryRecvError::Disconnected`] when additionally every sender
        /// has been dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let inner = &self.inner;
            let mut state = inner.state.lock().expect("channel poisoned");
            if let Some((_, value)) = state.queue.pop_front() {
                drop(state);
                inner.not_full.notify_all();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full queue so they can error.
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        thread::sleep(Duration::from_millis(10));
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;

        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1u8).is_ok());
        match tx.try_send(2u8) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3u8).is_ok());
        drop(rx);
        match tx.try_send(4u8) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 4),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // Rendezvous channels always report full: their sends always
        // block until a receiver takes the message.
        let (tx0, _rx0) = bounded(0);
        assert!(matches!(tx0.try_send(5u8), Err(TrySendError::Full(_))));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }

    #[test]
    fn rendezvous_capacity_zero_works() {
        let (tx, rx) = bounded(0);
        let producer = thread::spawn(move || {
            for i in 0..20 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn rendezvous_send_blocks_until_taken() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (tx, rx) = bounded(0);
        let handed_off = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&handed_off);
        let producer = thread::spawn(move || {
            tx.send(1u8).unwrap();
            flag.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(50));
        assert!(
            !handed_off.load(Ordering::SeqCst),
            "send returned before the message was received"
        );
        assert_eq!(rx.recv(), Ok(1));
        producer.join().unwrap();
        assert!(handed_off.load(Ordering::SeqCst));
    }

    #[test]
    fn rendezvous_withdraw_returns_own_message() {
        // Regression: with several senders blocked on a rendezvous
        // channel, dropping the receiver must hand each sender back its
        // *own* message (tickets, not queue positions) without panicking.
        for _ in 0..200 {
            let (tx, rx) = bounded(0);
            let senders: Vec<_> = (0..3u8)
                .map(|i| {
                    let tx = tx.clone();
                    thread::spawn(move || tx.send(i))
                })
                .collect();
            drop(tx);
            thread::sleep(Duration::from_micros(50));
            drop(rx);
            for (i, h) in senders.into_iter().enumerate() {
                match h.join().expect("sender must not panic") {
                    Ok(()) => {} // receiver took it before dropping
                    Err(super::channel::SendError(v)) => {
                        assert_eq!(v, i as u8, "sender got someone else's message back");
                    }
                }
            }
        }
    }

    #[test]
    fn mpmc_clone_endpoints() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err());
    }
}
