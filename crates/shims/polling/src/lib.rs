//! Offline stand-in for the `polling` ecosystem crate: the readiness
//! subset the event-driven service layer needs, implemented from
//! scratch with no registry dependencies (see DESIGN.md § Shims).
//!
//! Three pieces:
//!
//! 1. [`PollFd`] + [`wait`] — level-triggered *read* readiness over a
//!    set of sockets. On unix this is a direct FFI binding to
//!    `poll(2)` (libc is already linked into every Rust binary, so the
//!    `extern "C"` declaration costs nothing); elsewhere it degrades
//!    to a bounded sleep that reports every descriptor ready, which is
//!    correct (sockets are non-blocking, spurious readiness is
//!    re-checked by the read) just not efficient.
//! 2. [`Waker`]/[`WakeReceiver`] — a self-pipe built from a loopback
//!    TCP pair, so worker threads can interrupt a blocked [`wait`]
//!    call. `std` exposes no `pipe(2)`, but a connected socket pair is
//!    exactly as good for a one-byte doorbell.
//! 3. [`fd_of`] — extracts the OS descriptor from any socket type, so
//!    callers never `cfg` on the platform themselves.
//!
//! The API is deliberately smaller than the real crate's
//! `Poller`/`Events` model: the service layer rebuilds its interest
//! set every iteration anyway (sessions come and go constantly), so a
//! stateless `wait(&mut [PollFd], timeout)` is both simpler and no
//! slower than re-registering with an epoll instance would be at these
//! session counts.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// An OS socket descriptor as the poller sees it.
pub type OsFd = i32;

/// One descriptor in a [`wait`] interest set: read interest in, read
/// readiness out. Hangups and errors also report as ready — the
/// subsequent non-blocking read is what classifies them.
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: OsFd,
    /// Output: readable (or hung up / errored) after [`wait`] returns.
    pub ready: bool,
}

impl PollFd {
    /// Read-interest entry for `fd`, initially not ready.
    pub fn readable(fd: OsFd) -> Self {
        PollFd { fd, ready: false }
    }
}

/// The OS descriptor of a socket, for building a [`PollFd`] set.
#[cfg(unix)]
pub fn fd_of<T: std::os::unix::io::AsRawFd>(socket: &T) -> OsFd {
    socket.as_raw_fd()
}

/// Fallback for non-unix targets: descriptors are opaque (and unused —
/// [`wait`] reports everything ready there), so any value serves.
#[cfg(not(unix))]
pub fn fd_of<T>(_socket: &T) -> OsFd {
    -1
}

#[cfg(unix)]
mod sys {
    use super::{OsFd, PollFd};
    use std::io;
    use std::time::Duration;

    #[repr(C)]
    struct RawPollFd {
        fd: OsFd,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        // poll(2): nfds_t is c_ulong on every unix libc Rust targets.
        fn poll(fds: *mut RawPollFd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
    }

    pub fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let mut raw: Vec<RawPollFd> = fds
            .iter()
            .map(|p| RawPollFd {
                fd: p.fd,
                events: POLLIN,
                revents: 0,
            })
            .collect();
        let timeout_ms: i32 = match timeout {
            // poll(2) takes whole milliseconds; round up so a 100µs
            // deadline never busy-spins at timeout 0.
            Some(d) => i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX),
            None => -1,
        };
        // SAFETY: `raw` is a live, correctly sized array of repr(C)
        // pollfd structs for the duration of the call.
        let n = unsafe { poll(raw.as_mut_ptr(), raw.len() as std::ffi::c_ulong, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                // Spurious wake: callers re-check their world and poll
                // again, exactly as they would after a timeout.
                return Ok(0);
            }
            return Err(err);
        }
        let mut ready = 0usize;
        for (out, r) in fds.iter_mut().zip(&raw) {
            out.ready = r.revents & (POLLIN | POLLERR | POLLHUP) != 0;
            ready += usize::from(out.ready);
        }
        Ok(ready)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    /// Degraded mode: sleep briefly, then report everything ready.
    /// Non-blocking reads turn the spurious readiness into WouldBlock,
    /// so callers stay correct at the cost of a 1ms poll granularity.
    pub fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let nap = timeout
            .unwrap_or(Duration::from_millis(1))
            .min(Duration::from_millis(1));
        std::thread::sleep(nap);
        for f in fds.iter_mut() {
            f.ready = true;
        }
        Ok(fds.len())
    }
}

/// Blocks until at least one descriptor in `fds` is readable, the
/// timeout elapses, or a signal interrupts the call (reported as
/// `Ok(0)`, like a timeout). `None` blocks indefinitely. Readiness is
/// written back into each [`PollFd::ready`]; the return value is the
/// number of ready descriptors.
///
/// # Errors
///
/// Propagates the OS error from `poll(2)` (never `EINTR`, which is
/// normalized to `Ok(0)`).
pub fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    if fds.is_empty() {
        // poll(2) with no fds is just a sleep; honor the timeout so
        // callers with an empty interest set still pace themselves.
        if let Some(d) = timeout {
            std::thread::sleep(d);
            return Ok(0);
        }
    }
    sys::wait(fds, timeout)
}

/// The writing half of a wake pipe: any thread holding (a reference
/// to) one can interrupt the poller. Cheap, non-blocking, and safe to
/// fire redundantly — coalesced bytes still wake exactly once.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Makes the paired [`WakeReceiver`] readable. Never blocks: the
    /// send buffer being full means a wake is already pending, which
    /// is all a doorbell needs.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The readable half of a wake pipe: include [`fd`](Self::fd) in a
/// [`wait`] set, and [`drain`](Self::drain) it when it reports ready.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: TcpStream,
}

impl WakeReceiver {
    /// The descriptor to include in the poll set.
    pub fn fd(&self) -> OsFd {
        fd_of(&self.rx)
    }

    /// Consumes every pending wake byte (the receiver is non-blocking,
    /// so this never stalls).
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return, // peer gone: nothing to drain
                Ok(_) => {}      // keep draining
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }
}

/// Builds a connected wake pipe from a loopback TCP pair — the
/// portable self-pipe trick, since `std` has no `pipe(2)`.
///
/// # Errors
///
/// Propagates loopback bind/connect failures.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wait_times_out_on_silent_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut fds = [PollFd::readable(fd_of(&server))];
        let started = Instant::now();
        let n = wait(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert!(started.elapsed() >= Duration::from_millis(1));
        // Unix: nothing ready on a silent socket. Fallback: spuriously
        // ready is permitted by contract.
        if cfg!(unix) {
            assert_eq!(n, 0);
            assert!(!fds[0].ready);
        }
    }

    #[test]
    fn wait_reports_readable_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (&client).write_all(b"hi").unwrap();
        let mut fds = [PollFd::readable(fd_of(&server))];
        let n = wait(&mut fds, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready);
    }

    #[test]
    fn hangup_counts_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        drop(client);
        let mut fds = [PollFd::readable(fd_of(&server))];
        let n = wait(&mut fds, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1); // read will now observe EOF
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let (waker, rx) = wake_pair().unwrap();
        let poller = std::thread::spawn(move || {
            let mut fds = [PollFd::readable(rx.fd())];
            let n = wait(&mut fds, Some(Duration::from_secs(5))).unwrap();
            rx.drain();
            n
        });
        std::thread::sleep(Duration::from_millis(10));
        waker.wake();
        assert_eq!(poller.join().unwrap(), 1);
    }

    #[test]
    fn redundant_wakes_never_block() {
        let (waker, rx) = wake_pair().unwrap();
        for _ in 0..100_000 {
            waker.wake(); // fills the buffer; later wakes are dropped
        }
        rx.drain();
        let mut fds = [PollFd::readable(rx.fd())];
        if cfg!(unix) {
            assert_eq!(wait(&mut fds, Some(Duration::from_millis(5))).unwrap(), 0);
        }
        waker.wake();
        assert_eq!(wait(&mut fds, Some(Duration::from_secs(2))).unwrap(), 1);
    }

    #[test]
    fn empty_interest_set_sleeps_for_the_timeout() {
        let started = Instant::now();
        let n = wait(&mut [], Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(9));
    }
}
