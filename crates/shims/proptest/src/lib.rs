//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use, against
//! a deterministic seed derived from each test's module path:
//!
//! - the [`proptest!`] macro (`name in strategy` bindings, optional
//!   `#![proptest_config(...)]` header, early `return Ok(())`);
//! - [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`test_runner::TestCaseError`];
//! - strategies: numeric ranges, tuples, [`strategy::Just`],
//!   [`collection::vec`], [`any`], [`prop_oneof!`] unions (optionally
//!   weighted), `.prop_map`, boxed strategies, and string literals as a
//!   character-class regex subset (`"[a-z0-9]{1,8}"`);
//! - [`sample::Index`] for in-bounds index generation.
//!
//! There is **no shrinking**: a failing case panics with the generated
//! inputs printed, which is enough to reproduce (generation is
//! deterministic per test name).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case plumbing: config, RNG, and failure type.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;
    use std::hash::{Hash, Hasher};

    /// How many cases to run, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property; carries the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Convenience alias for property bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier (so every test
        /// has its own reproducible stream).
        pub fn deterministic(test_name: &str) -> TestRng {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut hasher);
            TestRng {
                inner: StdRng::seed_from_u64(hasher.finish()),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngExt, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies of one value type; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        entries: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(entries: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total_weight: u64 = entries.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! requires a positive total weight"
            );
            Union {
                entries,
                total_weight,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.random_range(0..self.total_weight);
            for (weight, strat) in &self.entries {
                if pick < *weight as u64 {
                    return strat.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weight bookkeeping is exhaustive")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String literals act as a character-class regex subset:
    /// `"[chars]{min,max}"`, where `chars` may contain `a-z` ranges and
    /// literal (including non-ASCII) characters. A bare `[chars]`
    /// generates exactly one character.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, min, max) = parse_char_class_regex(self);
            let len = rng.random_range(min..=max);
            (0..len)
                .map(|_| class[rng.random_range(0..class.len())])
                .collect()
        }
    }

    fn parse_char_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
        let mut chars = pattern.chars().peekable();
        assert_eq!(
            chars.next(),
            Some('['),
            "unsupported regex {pattern:?}: this shim only supports \"[class]{{min,max}}\""
        );
        let mut class: Vec<char> = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
            if c == ']' {
                break;
            }
            if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next(); // the '-'
                match lookahead.peek() {
                    Some(&hi) if hi != ']' => {
                        chars = lookahead;
                        let hi = chars.next().expect("peeked");
                        for v in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                class.push(ch);
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            class.push(c);
        }
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        let rest: String = chars.collect();
        if rest.is_empty() {
            return (class, 1, 1);
        }
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported regex suffix {rest:?} in {pattern:?}"));
        if let Some((lo, hi)) = counts.split_once(',') {
            (
                class,
                lo.trim().parse().expect("regex repeat min"),
                hi.trim().parse().expect("regex repeat max"),
            )
        } else {
            let n = counts.trim().parse().expect("regex repeat count");
            (class, n, n)
        }
    }
}

/// Types with a canonical "generate anything" strategy; see [`any`].
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f64 {
        use rand::RngExt;
        // Finite, sign-balanced, spanning many magnitudes.
        rng.random_range(-1e12..1e12)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point: a strategy for arbitrary `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    /// An abstract index resolved against a concrete length with
    /// [`Index::index`], mirroring `proptest::sample::Index`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl crate::Arbitrary for Index {
        fn arbitrary(rng: &mut crate::test_runner::TestRng) -> Index {
            use rand::RngCore;
            Index(rng.next_u64())
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` path prefix (`prop::collection::vec`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `name in strategy` binding is generated
/// per case; the body runs once per case and may `return Ok(())` early.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Strategies are built once; each case only draws from them.
                let __strategies = ($($strat,)+);
                for case in 0..config.cases {
                    // Snapshot the RNG so the failing case's inputs can be
                    // regenerated for the report — the passing path then
                    // skips Debug-formatting entirely.
                    let rng_at_case = rng.clone();
                    let ($(ref $arg,)+) = __strategies;
                    $( let $arg = $crate::strategy::Strategy::generate($arg, &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        let mut replay = rng_at_case;
                        let ($(ref $arg,)+) = __strategies;
                        $( let $arg = $crate::strategy::Strategy::generate($arg, &mut replay); )+
                        let inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; ",)+),
                            $(&$arg),+
                        );
                        panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            err,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a [`proptest!`] body, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), left, right
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Weighted (or unweighted) choice between strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_in_class() {
        let mut rng = crate::test_runner::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c9 ä]{2,5}", &mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "len {n}");
            assert!(s.chars().all(|c| "abc9 ä".contains(c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn union_respects_weights_and_values() {
        let mut rng = crate::test_runner::TestRng::deterministic("union");
        let strat = prop_oneof![
            9 => Just(1u8),
            1 => Just(2u8),
        ];
        let picks: Vec<u8> = (0..1000).map(|_| strat.generate(&mut rng)).collect();
        let ones = picks.iter().filter(|&&v| v == 1).fold(0u32, |n, _| n + 1);
        assert!(ones > 800, "expected mostly 1s, got {ones}");
        assert!(picks.iter().all(|&v| v == 1 || v == 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_bindings(
            xs in prop::collection::vec(-10.0f64..10.0, 1..20),
            n in 1usize..5,
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert!((1..5).contains(&n));
            if flag {
                return Ok(());
            }
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..4, "[x-z]{1,3}").prop_map(|(k, s)| (k, s.len())),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..=3).contains(&pair.1));
        }

        #[test]
        fn index_is_in_bounds(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }

        /// The failure path regenerates and reports the case's inputs
        /// (they are only formatted on failure).
        #[test]
        #[should_panic(expected = "inputs: n = 1")]
        fn failure_reports_regenerated_inputs(n in 10usize..20) {
            prop_assert!(n < 10);
        }
    }
}
