//! Offline stand-in for the `rand` crate.
//!
//! The build must succeed with no network access and no pre-populated
//! registry cache, so this workspace ships a from-scratch implementation
//! of the (small) `rand` API subset the other crates use:
//!
//! - [`rngs::StdRng`] — a seedable xoshiro256++ generator;
//! - [`SeedableRng::seed_from_u64`] — deterministic seeding (splitmix64
//!   expansion, as the real `rand` does for small seeds);
//! - [`RngExt`] — `random_range` over integer and float ranges and
//!   `random_bool`, the sampling surface used by the synthesizer and the
//!   cross-validation protocols;
//! - [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! Determinism is part of the contract: the same seed must produce the
//! same corpus on every platform, because the experiment binaries report
//! seeded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via splitmix64.
    ///
    /// Not cryptographically secure — it backs synthetic workloads and
    /// cross-validation shuffles only.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce it across four draws, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that knows how to draw a uniform sample of `T` from it.
pub trait SampleRange<T> {
    /// Draws one sample. Panics on an empty range, like the real crate.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Rounding can land exactly on the exclusive bound; keep the
        // half-open contract by stepping just inside it.
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.next_f64()
    }
}

/// Uniform integer in `[0, bound)` by rejection-free multiply-shift
/// (Lemire); the tiny bias for huge bounds is irrelevant here.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.random_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn half_open_f64_range_excludes_end() {
        // A one-ulp range has exactly one representable value: rounding
        // must never return the exclusive end.
        let mut rng = StdRng::seed_from_u64(11);
        let end = 1.0f64.next_up();
        for _ in 0..10_000 {
            assert_eq!(rng.random_range(1.0..end), 1.0);
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
