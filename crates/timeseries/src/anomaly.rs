//! Streaming SAX-bitmap anomaly scoring — the algorithm inside the
//! paper's `saxanomaly` operator.
//!
//! Two adjacent windows of SAX symbols slide over the stream: a *lag*
//! window (older history) and a *lead* window (the most recent samples).
//! Each window maintains an n-gram count matrix ([`SaxBitmap`]); the
//! anomaly score at time `t` is the Euclidean distance between the two
//! frequency matrices. "The SAX anomaly window size specifies the number
//! of samples to use for constructing each concatenated matrix" (§3); the
//! paper's acoustic experiments use window 100 and alphabet 8.
//!
//! The detector is single-scan with O(1) work per sample and no
//! per-sample allocation: bitmap maintenance touches at most four cells,
//! and the Euclidean distance is maintained incrementally from exact
//! integer running sums (Σa², Σb², Σa·b) rather than re-scanning all
//! alphabetⁿ cells — satisfying the paper's requirement of "processor
//! and memory efficient techniques" (§5).

use crate::bitmap::SaxBitmap;
use crate::gaussian::sax_breakpoints;
use crate::sax::Symbol;
use crate::znorm::znorm_value;
use river_dsp::stats::{SlidingStats, Welford};

/// How incoming samples are Z-normalized before symbol quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Incrementally estimated mean/σ over the whole stream so far
    /// (Welford). Stable for stationary noise floors; the default.
    #[default]
    Global,
    /// Mean/σ over a trailing window of the given size. Adapts to slow
    /// drift (e.g. changing wind levels) at the cost of partially
    /// normalizing away long events.
    Sliding(usize),
}

/// Configuration for [`BitmapAnomaly`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Samples per bitmap window (the paper's "SAX anomaly window size";
    /// 100 in its experiments).
    pub window: usize,
    /// SAX alphabet size (8 in the paper's experiments).
    pub alphabet: usize,
    /// Bitmap subsequence length (1–3 per Kumar et al.; 2 by default).
    pub ngram: usize,
    /// Sample normalization mode.
    pub normalization: Normalization,
}

impl Default for AnomalyConfig {
    /// The paper's acoustic-pipeline parameters: window 100, alphabet 8,
    /// bigram bitmaps, global normalization.
    fn default() -> Self {
        AnomalyConfig {
            window: 100,
            alphabet: 8,
            ngram: 2,
            normalization: Normalization::Global,
        }
    }
}

/// Streaming lag/lead bitmap anomaly detector.
///
/// # Example
///
/// ```
/// use river_sax::anomaly::{AnomalyConfig, BitmapAnomaly};
///
/// let mut det = BitmapAnomaly::new(AnomalyConfig::default());
/// let mut max_score: f64 = 0.0;
/// for i in 0..5_000 {
///     let noise = ((i * 2654435761_usize % 1000) as f64 / 1000.0 - 0.5) * 0.02;
///     let event = if i > 3_000 { ((i as f64) * 0.9).sin() } else { 0.0 };
///     max_score = max_score.max(det.push(noise + event));
/// }
/// assert!(max_score > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BitmapAnomaly {
    config: AnomalyConfig,
    breakpoints: Vec<f64>,
    /// Ring buffer of recent symbols; sized to cover both windows plus
    /// one evicting gram.
    ring: Vec<Symbol>,
    /// Samples consumed so far.
    t: u64,
    lead: SaxBitmap,
    lag: SaxBitmap,
    /// Exact running sums over all cells — Σ lead², Σ lag², and
    /// Σ lead·lag of the raw counts. Counts are bounded by the window
    /// size, so these stay exact in u64, and together they give the
    /// Euclidean distance between the two frequency matrices in O(1):
    /// d² = Σ(a/ta − b/tb)² = Saa/ta² − 2·Sab/(ta·tb) + Sbb/tb².
    saa: u64,
    sbb: u64,
    sab: u64,
    global_stats: Welford,
    sliding_stats: Option<SlidingStats>,
}

impl BitmapAnomaly {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `ngram == 0`, `ngram > window`, or the
    /// alphabet is outside `2..=256`.
    pub fn new(config: AnomalyConfig) -> Self {
        assert!(config.window > 0, "window must be non-zero");
        assert!(
            (2..=256).contains(&config.alphabet),
            "alphabet must be in 2..=256"
        );
        assert!(
            config.ngram >= 1 && config.ngram <= config.window,
            "ngram must be in 1..=window"
        );
        let ring_len = 2 * config.window + config.ngram;
        let sliding_stats = match config.normalization {
            Normalization::Sliding(w) => {
                assert!(w > 0, "sliding normalization window must be non-zero");
                Some(SlidingStats::new(w))
            }
            Normalization::Global => None,
        };
        BitmapAnomaly {
            breakpoints: sax_breakpoints(config.alphabet),
            ring: vec![0; ring_len],
            t: 0,
            lead: SaxBitmap::new(config.alphabet, config.ngram),
            lag: SaxBitmap::new(config.alphabet, config.ngram),
            saa: 0,
            sbb: 0,
            sab: 0,
            global_stats: Welford::new(),
            sliding_stats,
            config,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AnomalyConfig {
        &self.config
    }

    /// Number of samples consumed.
    pub fn samples_seen(&self) -> u64 {
        self.t
    }

    /// `true` once both windows are fully populated and scores are
    /// meaningful.
    pub fn warmed_up(&self) -> bool {
        self.t >= 2 * self.config.window as u64
    }

    #[inline]
    fn quantize(&self, z: f64) -> Symbol {
        self.breakpoints.partition_point(|&b| b <= z) as Symbol
    }

    #[inline]
    fn ring_get(&self, abs: u64) -> Symbol {
        self.ring[(abs % self.ring.len() as u64) as usize]
    }

    /// Flattened bitmap cell index of the n-gram starting at absolute
    /// position `start` — same row-major layout as
    /// [`SaxBitmap::index_of`], computed straight off the ring buffer
    /// with no intermediate gram slice.
    #[inline]
    fn gram_index_at(&self, start: u64) -> usize {
        let mut idx = 0usize;
        for i in 0..self.config.ngram as u64 {
            idx = idx * self.config.alphabet + self.ring_get(start + i) as usize;
        }
        idx
    }

    /// The gram starting at `start` enters the lead window.
    #[inline]
    fn lead_enter(&mut self, start: u64) {
        let idx = self.gram_index_at(start);
        let old = self.lead.add_index(idx);
        self.saa += 2 * old + 1;
        self.sab += self.lag.count_at(idx);
    }

    /// The gram starting at `start` leaves the lead window.
    #[inline]
    fn lead_leave(&mut self, start: u64) {
        let idx = self.gram_index_at(start);
        let old = self.lead.remove_index(idx);
        self.saa -= 2 * old - 1;
        self.sab -= self.lag.count_at(idx);
    }

    /// The gram starting at `start` enters the lag window.
    #[inline]
    fn lag_enter(&mut self, start: u64) {
        let idx = self.gram_index_at(start);
        let old = self.lag.add_index(idx);
        self.sbb += 2 * old + 1;
        self.sab += self.lead.count_at(idx);
    }

    /// The gram starting at `start` leaves the lag window.
    #[inline]
    fn lag_leave(&mut self, start: u64) {
        let idx = self.gram_index_at(start);
        let old = self.lag.remove_index(idx);
        self.sbb -= 2 * old - 1;
        self.sab -= self.lead.count_at(idx);
    }

    /// Consumes one sample and returns the current anomaly score
    /// (`0.0` until warm-up completes).
    pub fn push(&mut self, x: f64) -> f64 {
        let (mean, std) = if let Some(s) = &mut self.sliding_stats {
            s.push(x);
            (s.mean(), s.population_std_dev())
        } else {
            self.global_stats.push(x);
            (
                self.global_stats.mean(),
                self.global_stats.population_std_dev(),
            )
        };
        let symbol = self.quantize(znorm_value(x, mean, std));

        let t = self.t; // absolute index of this sample
        let w = self.config.window as u64;
        let n = self.config.ngram as u64;
        let ring_len = self.ring.len() as u64;
        self.ring[(t % ring_len) as usize] = symbol;

        // Newest gram (ending at t) enters the lead window.
        if t + 1 >= n {
            self.lead_enter(t + 1 - n);
        }
        // The gram starting at t-w slides out of the lead window.
        if t >= w {
            self.lead_leave(t - w);
            // It is now fully inside the lag window once its end crosses
            // the boundary: gram starting at t-w-n+1 enters lag.
            if t + 1 >= w + n {
                self.lag_enter(t + 1 - w - n);
            }
        }
        // The gram starting at t-2w slides out of the lag window.
        if t >= 2 * w {
            self.lag_leave(t - 2 * w);
        }

        self.t += 1;
        if self.warmed_up() {
            // Same Euclidean distance as `SaxBitmap::distance`, from the
            // O(1)-maintained exact sums; clamp tiny negative rounding
            // residue when the matrices are (near-)identical.
            let ta = self.lead.total().max(1) as f64;
            let tb = self.lag.total().max(1) as f64;
            let d2 = self.saa as f64 / (ta * ta) - 2.0 * self.sab as f64 / (ta * tb)
                + self.sbb as f64 / (tb * tb);
            d2.max(0.0).sqrt()
        } else {
            0.0
        }
    }

    /// Resets all stream state (windows, counters and normalization).
    pub fn reset(&mut self) {
        self.ring.fill(0);
        self.t = 0;
        self.lead.clear();
        self.lag.clear();
        self.saa = 0;
        self.sbb = 0;
        self.sab = 0;
        self.global_stats.reset();
        if let Some(s) = &mut self.sliding_stats {
            s.clear();
        }
    }
}

/// Batch helper: anomaly score for every sample of `series` under
/// `config` (single scan, same output as feeding [`BitmapAnomaly`]
/// sample by sample).
pub fn anomaly_scores(series: &[f64], config: AnomalyConfig) -> Vec<f64> {
    let mut det = BitmapAnomaly::new(config);
    series.iter().map(|&x| det.push(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize) -> f64 {
        // Deterministic pseudo-noise in [-0.05, 0.05].
        (((i.wrapping_mul(2654435761)) % 10_000) as f64 / 10_000.0 - 0.5) * 0.1
    }

    fn small_cfg() -> AnomalyConfig {
        AnomalyConfig {
            window: 50,
            alphabet: 6,
            ngram: 2,
            normalization: Normalization::Global,
        }
    }

    #[test]
    fn warmup_scores_are_zero() {
        let cfg = small_cfg();
        let mut det = BitmapAnomaly::new(cfg);
        // The first 2*window - 1 samples cannot fill both windows.
        for i in 0..(2 * cfg.window - 1) {
            let s = det.push(noise(i));
            assert_eq!(s, 0.0, "sample {i} before warm-up");
        }
        assert!(!det.warmed_up());
        det.push(noise(2 * cfg.window));
        assert!(det.warmed_up());
    }

    #[test]
    fn stationary_noise_scores_low_event_scores_high() {
        let cfg = small_cfg();
        let mut det = BitmapAnomaly::new(cfg);
        let mut quiet_max: f64 = 0.0;
        // Long stationary stretch.
        for i in 0..3_000 {
            let s = det.push(noise(i));
            if i > 1_000 {
                quiet_max = quiet_max.max(s);
            }
        }
        // Structured loud event: a tone sweep.
        let mut event_max: f64 = 0.0;
        for i in 0..500 {
            let x = (i as f64 * 0.35).sin() * 2.0;
            event_max = event_max.max(det.push(x + noise(i)));
        }
        assert!(
            event_max > 2.0 * quiet_max,
            "event {event_max} vs quiet {quiet_max}"
        );
    }

    #[test]
    fn score_falls_after_event_ends() {
        let cfg = small_cfg();
        let mut det = BitmapAnomaly::new(cfg);
        for i in 0..2_000 {
            det.push(noise(i));
        }
        let mut during: f64 = 0.0;
        for i in 0..400 {
            during = during.max(det.push((i as f64 * 0.5).sin() * 3.0));
        }
        // Return to noise; after both windows re-fill with noise the score
        // must come back down.
        let mut tail = 0.0f64;
        for i in 0..2_000 {
            let s = det.push(noise(i + 7));
            if i > 500 {
                tail = tail.max(s);
            }
        }
        assert!(tail < during / 2.0, "tail {tail} vs during {during}");
    }

    #[test]
    fn incremental_distance_matches_full_recompute() {
        // The O(1) running-sum score must agree with a from-scratch
        // Euclidean distance over the full matrices at every step,
        // through warm-up, events, and recovery.
        let cfg = small_cfg();
        let mut det = BitmapAnomaly::new(cfg);
        for i in 0..3_000usize {
            let x = noise(i)
                + if i % 700 < 80 {
                    (i as f64 * 0.4).sin() * 2.0
                } else {
                    0.0
                };
            let s = det.push(x);
            if det.warmed_up() {
                let full = det.lead.distance(&det.lag);
                assert!(
                    (s - full).abs() <= 1e-12 * full.max(1.0),
                    "sample {i}: incremental {s} vs full {full}"
                );
            } else {
                assert_eq!(s, 0.0);
            }
        }
    }

    #[test]
    fn batch_matches_streaming() {
        let cfg = small_cfg();
        let series: Vec<f64> = (0..1_000)
            .map(|i| noise(i) + if i > 600 { (i as f64 * 0.4).sin() } else { 0.0 })
            .collect();
        let batch = anomaly_scores(&series, cfg);
        let mut det = BitmapAnomaly::new(cfg);
        let streamed: Vec<f64> = series.iter().map(|&x| det.push(x)).collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let cfg = small_cfg();
        let series: Vec<f64> = (0..500).map(noise).collect();
        let mut det = BitmapAnomaly::new(cfg);
        let first: Vec<f64> = series.iter().map(|&x| det.push(x)).collect();
        det.reset();
        let second: Vec<f64> = series.iter().map(|&x| det.push(x)).collect();
        assert_eq!(first, second);
        assert_eq!(det.samples_seen(), 500);
    }

    #[test]
    fn sliding_normalization_mode_works() {
        let cfg = AnomalyConfig {
            normalization: Normalization::Sliding(200),
            ..small_cfg()
        };
        let mut det = BitmapAnomaly::new(cfg);
        let mut max: f64 = 0.0;
        for i in 0..2_000 {
            let x = noise(i)
                + if i > 1_500 {
                    (i as f64 * 0.45).sin()
                } else {
                    0.0
                };
            max = max.max(det.push(x));
        }
        assert!(max > 0.0);
    }

    #[test]
    fn scores_are_bounded_by_sqrt_two() {
        // Frequencies are probability vectors, so the distance can never
        // exceed sqrt(2).
        let cfg = small_cfg();
        let mut det = BitmapAnomaly::new(cfg);
        for i in 0..5_000 {
            let x = if i % 997 < 100 { 5.0 } else { noise(i) };
            let s = det.push(x);
            assert!(s <= std::f64::consts::SQRT_2 + 1e-12, "score {s}");
        }
    }

    #[test]
    fn trigram_bitmaps_supported() {
        let cfg = AnomalyConfig {
            ngram: 3,
            ..small_cfg()
        };
        let mut det = BitmapAnomaly::new(cfg);
        for i in 0..1_000 {
            det.push(noise(i));
        }
        assert!(det.warmed_up());
    }

    #[test]
    fn unigram_bitmaps_supported() {
        let cfg = AnomalyConfig {
            ngram: 1,
            ..small_cfg()
        };
        let scores = anomaly_scores(&(0..500).map(noise).collect::<Vec<_>>(), cfg);
        assert_eq!(scores.len(), 500);
    }

    #[test]
    fn paper_defaults() {
        let cfg = AnomalyConfig::default();
        assert_eq!(cfg.window, 100);
        assert_eq!(cfg.alphabet, 8);
    }

    #[test]
    #[should_panic(expected = "ngram must be in")]
    fn rejects_ngram_larger_than_window() {
        BitmapAnomaly::new(AnomalyConfig {
            window: 2,
            ngram: 3,
            ..AnomalyConfig::default()
        });
    }
}
