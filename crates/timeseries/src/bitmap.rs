//! SAX bitmaps (time-series bitmaps, Kumar et al. 2005).
//!
//! A bitmap counts occurrences of symbolic subsequences of length `n`
//! (1, 2 or 3 symbols) in an `n`-dimensional matrix; "each cell contains
//! the frequency with which the corresponding subsequence occurs.
//! Frequencies are computed by dividing the subsequence count by the
//! total number of subsequences. An anomaly score can be computed by
//! comparing two concatenated bitmap matrices using Euclidean distance"
//! (paper §2).
//!
//! [`SaxBitmap`] supports O(1) incremental insertion *and removal* of
//! n-grams, which is what makes the single-scan streaming detector in
//! [`crate::anomaly`] possible.

use crate::sax::Symbol;

/// An n-gram count matrix over a SAX alphabet.
///
/// The matrix is flattened: an n-gram `(s₁, …, sₙ)` indexes cell
/// `s₁·aⁿ⁻¹ + … + sₙ`.
///
/// # Example
///
/// ```
/// use river_sax::SaxBitmap;
///
/// let mut bm = SaxBitmap::new(4, 2);
/// bm.count_sequence(&[0, 1, 2, 3]);   // trigrams: (0,1), (1,2), (2,3)
/// assert_eq!(bm.total(), 3);
/// assert!((bm.frequency(&[0, 1]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SaxBitmap {
    alphabet: usize,
    ngram: usize,
    counts: Vec<u64>,
    total: u64,
}

impl SaxBitmap {
    /// Creates an empty bitmap for `alphabet` symbols and subsequences of
    /// `ngram` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet < 2`, `ngram == 0`, or the matrix would exceed
    /// 2²⁴ cells (e.g. alphabet 256 with ngram 3).
    pub fn new(alphabet: usize, ngram: usize) -> Self {
        assert!(alphabet >= 2, "alphabet must be at least 2");
        assert!(ngram >= 1, "ngram must be at least 1");
        let cells = alphabet
            .checked_pow(ngram as u32)
            .filter(|&c| c <= 1 << 24)
            .expect("bitmap too large: alphabet^ngram must be <= 2^24");
        SaxBitmap {
            alphabet,
            ngram,
            counts: vec![0; cells],
            total: 0,
        }
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Subsequence length counted by this bitmap.
    pub fn ngram(&self) -> usize {
        self.ngram
    }

    /// Number of matrix cells (`alphabet ^ ngram`).
    pub fn cells(&self) -> usize {
        self.counts.len()
    }

    /// Total number of n-grams counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Flattened index of an n-gram.
    ///
    /// # Panics
    ///
    /// Panics if `gram.len() != self.ngram()` or any symbol is out of
    /// range.
    #[inline]
    pub fn index_of(&self, gram: &[Symbol]) -> usize {
        assert_eq!(gram.len(), self.ngram, "gram length must equal ngram");
        let mut idx = 0usize;
        for &s in gram {
            let s = s as usize;
            assert!(s < self.alphabet, "symbol {s} out of alphabet range");
            idx = idx * self.alphabet + s;
        }
        idx
    }

    /// Increments the count for one n-gram.
    #[inline]
    pub fn add(&mut self, gram: &[Symbol]) {
        let idx = self.index_of(gram);
        self.add_index(idx);
    }

    /// Decrements the count for one n-gram (streaming window eviction).
    ///
    /// # Panics
    ///
    /// Panics if the n-gram's count is already zero — that indicates the
    /// caller's window bookkeeping is corrupted.
    #[inline]
    pub fn remove(&mut self, gram: &[Symbol]) {
        let idx = self.index_of(gram);
        self.remove_index(idx);
    }

    /// Increments the count at a flattened cell index (see
    /// [`index_of`](Self::index_of)), returning the count *before* the
    /// increment. The streaming detector uses this to maintain running
    /// distance sums without materializing n-gram slices.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.cells()`.
    #[inline]
    pub fn add_index(&mut self, idx: usize) -> u64 {
        let old = self.counts[idx];
        self.counts[idx] = old + 1;
        self.total += 1;
        old
    }

    /// Decrements the count at a flattened cell index, returning the
    /// count *before* the decrement.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.cells()` or the cell's count is already
    /// zero.
    #[inline]
    pub fn remove_index(&mut self, idx: usize) -> u64 {
        let old = self.counts[idx];
        assert!(old > 0, "removing n-gram with zero count");
        self.counts[idx] = old - 1;
        self.total -= 1;
        old
    }

    /// Raw count at a flattened cell index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.cells()`.
    #[inline]
    pub fn count_at(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Counts every n-gram of a symbol sequence (batch construction).
    pub fn count_sequence(&mut self, symbols: &[Symbol]) {
        if symbols.len() < self.ngram {
            return;
        }
        for gram in symbols.windows(self.ngram) {
            self.add(gram);
        }
    }

    /// Raw count for one n-gram.
    pub fn count(&self, gram: &[Symbol]) -> u64 {
        self.counts[self.index_of(gram)]
    }

    /// Frequency (count / total) for one n-gram; `0.0` when the bitmap is
    /// empty.
    pub fn frequency(&self, gram: &[Symbol]) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(gram) as f64 / self.total as f64
        }
    }

    /// The full frequency matrix, flattened.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let t = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Euclidean distance between the frequency matrices of two bitmaps —
    /// the paper's anomaly score between lag and lead windows.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps have different shapes.
    pub fn distance(&self, other: &SaxBitmap) -> f64 {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        assert_eq!(self.ngram, other.ngram, "ngram mismatch");
        if self.total == 0 && other.total == 0 {
            return 0.0;
        }
        let ta = self.total.max(1) as f64;
        let tb = other.total.max(1) as f64;
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| {
                let d = a as f64 / ta - b as f64 / tb;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Clears all counts.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sequence_counts_all_windows() {
        let mut bm = SaxBitmap::new(3, 2);
        bm.count_sequence(&[0, 1, 2, 0, 1]);
        assert_eq!(bm.total(), 4);
        assert_eq!(bm.count(&[0, 1]), 2);
        assert_eq!(bm.count(&[1, 2]), 1);
        assert_eq!(bm.count(&[2, 0]), 1);
        assert_eq!(bm.count(&[2, 2]), 0);
    }

    #[test]
    fn short_sequence_counts_nothing() {
        let mut bm = SaxBitmap::new(3, 3);
        bm.count_sequence(&[0, 1]);
        assert_eq!(bm.total(), 0);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut bm = SaxBitmap::new(4, 2);
        bm.count_sequence(&[0, 1, 2, 3, 2, 1, 0, 0, 3]);
        let sum: f64 = bm.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_remove_round_trip() {
        let mut bm = SaxBitmap::new(4, 2);
        bm.add(&[1, 2]);
        bm.add(&[1, 2]);
        bm.remove(&[1, 2]);
        assert_eq!(bm.count(&[1, 2]), 1);
        assert_eq!(bm.total(), 1);
    }

    #[test]
    fn identical_bitmaps_have_zero_distance() {
        let mut a = SaxBitmap::new(4, 2);
        let mut b = SaxBitmap::new(4, 2);
        for s in [&[0u8, 1u8][..], &[1, 2], &[2, 3]] {
            a.add(s);
            b.add(s);
        }
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn distance_is_scale_invariant_in_counts() {
        // Same distribution at different totals -> distance 0.
        let mut a = SaxBitmap::new(3, 1);
        let mut b = SaxBitmap::new(3, 1);
        a.add(&[0]);
        a.add(&[1]);
        for _ in 0..10 {
            b.add(&[0]);
            b.add(&[1]);
        }
        assert!(a.distance(&b) < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_max_distance() {
        let mut a = SaxBitmap::new(2, 1);
        let mut b = SaxBitmap::new(2, 1);
        a.add(&[0]);
        b.add(&[1]);
        // Frequency vectors (1,0) vs (0,1): distance = sqrt(2).
        assert!((a.distance(&b) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn empty_vs_empty_is_zero() {
        let a = SaxBitmap::new(4, 2);
        let b = SaxBitmap::new(4, 2);
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn distance_symmetric() {
        let mut a = SaxBitmap::new(4, 2);
        let mut b = SaxBitmap::new(4, 2);
        a.count_sequence(&[0, 1, 2, 3, 0]);
        b.count_sequence(&[3, 3, 3, 1, 0]);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-15);
    }

    #[test]
    fn index_layout_is_row_major() {
        let bm = SaxBitmap::new(4, 2);
        assert_eq!(bm.index_of(&[0, 0]), 0);
        assert_eq!(bm.index_of(&[0, 3]), 3);
        assert_eq!(bm.index_of(&[1, 0]), 4);
        assert_eq!(bm.index_of(&[3, 3]), 15);
    }

    #[test]
    fn cells_scale_with_ngram() {
        assert_eq!(SaxBitmap::new(8, 1).cells(), 8);
        assert_eq!(SaxBitmap::new(8, 2).cells(), 64);
        assert_eq!(SaxBitmap::new(8, 3).cells(), 512);
    }

    #[test]
    fn clear_resets() {
        let mut bm = SaxBitmap::new(3, 1);
        bm.add(&[1]);
        bm.clear();
        assert_eq!(bm.total(), 0);
        assert_eq!(bm.count(&[1]), 0);
    }

    #[test]
    #[should_panic(expected = "zero count")]
    fn remove_from_zero_panics() {
        let mut bm = SaxBitmap::new(3, 1);
        bm.remove(&[0]);
    }

    #[test]
    #[should_panic(expected = "bitmap too large")]
    fn rejects_oversized_matrix() {
        SaxBitmap::new(256, 4);
    }

    #[test]
    #[should_panic(expected = "out of alphabet range")]
    fn rejects_out_of_range_symbol() {
        let mut bm = SaxBitmap::new(3, 1);
        bm.add(&[3]);
    }
}
