//! Discord discovery (HOT SAX, Keogh et al. 2005).
//!
//! A discord is "the sequence that is least similar to all other
//! sequences" (paper §2/§5). The paper notes a key limitation — discord
//! discovery needs a *finite* series — which is exactly what ensembles
//! avoid. This module implements discord search so the repository can
//! compare ensembles against discords on the same data (and benchmark
//! the single-scan advantage of ensemble extraction).

use crate::distance::euclidean_early_abandon;
use crate::sax::SaxEncoder;
use crate::znorm::znormalize;
use std::collections::HashMap;

/// A discovered discord.
#[derive(Debug, Clone, PartialEq)]
pub struct Discord {
    /// Start index of the discord subsequence.
    pub position: usize,
    /// Subsequence length.
    pub length: usize,
    /// Distance to its nearest non-overlapping neighbor.
    pub distance: f64,
}

/// Finds the top discord of `series` at subsequence length `len` using
/// the HOT SAX outer/inner-loop heuristic with early abandonment.
///
/// Returns `None` when the series has fewer than `2 * len` samples (no
/// pair of non-overlapping subsequences exists).
///
/// Subsequences are compared Z-normalized, as in the reference
/// algorithm.
///
/// # Panics
///
/// Panics if `len == 0`.
///
/// # Example
///
/// ```
/// use river_sax::discord::find_discord;
///
/// // Repeating pattern with one corrupted beat.
/// let mut series: Vec<f64> = (0..400).map(|i| (i as f64 * 0.5).sin()).collect();
/// for i in 200..216 {
///     series[i] = 2.0 * ((i * i) as f64 * 0.37).sin();
/// }
/// let d = find_discord(&series, 16).unwrap();
/// assert!((184..=216).contains(&d.position));
/// ```
pub fn find_discord(series: &[f64], len: usize) -> Option<Discord> {
    assert!(len > 0, "discord length must be non-zero");
    if series.len() < 2 * len {
        return None;
    }
    let n_subs = series.len() - len + 1;

    // Pre-normalize all subsequences once.
    let subs: Vec<Vec<f64>> = (0..n_subs)
        .map(|i| znormalize(&series[i..i + len]))
        .collect();

    // HOT SAX outer-loop ordering: group positions by SAX word; rare
    // words first maximizes early abandonment in the inner loop.
    let word_len = (len / 4).clamp(2, 16).min(len);
    let enc = SaxEncoder::new(4, word_len);
    let mut groups: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    for (i, sub) in subs.iter().enumerate() {
        let word = enc.encode_paa(&crate::paa::paa(sub, word_len));
        groups.entry(word.0).or_default().push(i);
    }
    let mut order: Vec<usize> = Vec::with_capacity(n_subs);
    let mut grouped: Vec<&Vec<usize>> = groups.values().collect();
    grouped.sort_by_key(|g| g.len());
    for g in grouped {
        order.extend_from_slice(g);
    }

    let mut best: Option<Discord> = None;
    for &i in &order {
        // Nearest non-overlapping neighbor of subsequence i, abandoning
        // once it cannot beat the best discord so far.
        let mut nearest = f64::INFINITY;
        let floor = best.as_ref().map_or(0.0, |b| b.distance);
        let mut beaten = false;
        for j in 0..n_subs {
            if j.abs_diff(i) < len {
                continue; // overlapping — self-match exclusion
            }
            let limit = nearest.min(f64::MAX);
            if let Some(d) = euclidean_early_abandon(&subs[i], &subs[j], limit) {
                if d < nearest {
                    nearest = d;
                    if nearest < floor {
                        // i cannot be the discord; abandon outer candidate.
                        beaten = true;
                        break;
                    }
                }
            }
        }
        if beaten || nearest == f64::INFINITY {
            continue;
        }
        if best.as_ref().is_none_or(|b| nearest > b.distance) {
            best = Some(Discord {
                position: i,
                length: len,
                distance: nearest,
            });
        }
    }
    best
}

/// Brute-force reference implementation (no heuristics); used by tests
/// to validate [`find_discord`].
pub fn find_discord_brute(series: &[f64], len: usize) -> Option<Discord> {
    assert!(len > 0, "discord length must be non-zero");
    if series.len() < 2 * len {
        return None;
    }
    let n_subs = series.len() - len + 1;
    let subs: Vec<Vec<f64>> = (0..n_subs)
        .map(|i| znormalize(&series[i..i + len]))
        .collect();
    let mut best: Option<Discord> = None;
    for i in 0..n_subs {
        let mut nearest = f64::INFINITY;
        for j in 0..n_subs {
            if j.abs_diff(i) < len {
                continue;
            }
            let d = crate::distance::euclidean(&subs[i], &subs[j]);
            nearest = nearest.min(d);
        }
        if nearest.is_finite() && best.as_ref().is_none_or(|b| nearest > b.distance) {
            best = Some(Discord {
                position: i,
                length: len,
                distance: nearest,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_anomaly() -> Vec<f64> {
        let mut s: Vec<f64> = (0..300).map(|i| (i as f64 * 0.4).sin()).collect();
        for (k, v) in s.iter_mut().enumerate().skip(150).take(12) {
            *v = ((k * 13) as f64 * 0.9).cos() * 3.0;
        }
        s
    }

    #[test]
    fn finds_injected_anomaly() {
        let s = series_with_anomaly();
        let d = find_discord(&s, 12).expect("discord");
        assert!((138..=162).contains(&d.position), "found at {}", d.position);
        assert!(d.distance > 0.0);
    }

    #[test]
    fn heuristic_matches_brute_force_distance() {
        let s = series_with_anomaly();
        let fast = find_discord(&s, 12).unwrap();
        let brute = find_discord_brute(&s, 12).unwrap();
        assert!((fast.distance - brute.distance).abs() < 1e-9);
        assert_eq!(fast.position, brute.position);
    }

    #[test]
    fn too_short_series_is_none() {
        assert!(find_discord(&[1.0; 10], 6).is_none());
        assert!(find_discord_brute(&[1.0; 10], 6).is_none());
    }

    #[test]
    fn uniform_series_has_zero_distance_discord() {
        let d = find_discord(&vec![1.0; 64], 8).unwrap();
        assert_eq!(d.distance, 0.0);
    }

    #[test]
    #[should_panic(expected = "length must be non-zero")]
    fn rejects_zero_length() {
        find_discord(&[1.0; 10], 0);
    }
}
