//! Vector distances used across the workspace (pattern matching in MESO,
//! discord/motif search, bitmap comparison).

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean (L2) distance.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// use river_sax::distance::euclidean;
/// assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Euclidean distance with early abandonment: returns `None` as soon as
/// the partial squared sum exceeds `limit²`. Used by the HOT SAX inner
/// loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn euclidean_early_abandon(a: &[f64], b: &[f64], limit: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let limit_sq = limit * limit;
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
        if acc > limit_sq {
            return None;
        }
    }
    Some(acc.sqrt())
}

/// Manhattan (L1) distance.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Chebyshev (L∞) distance.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_known_values() {
        assert_eq!(euclidean(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
        assert_eq!(euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn squared_is_square() {
        let a = [1.0, -2.0, 3.0];
        let b = [0.0, 2.0, 1.5];
        assert!((euclidean(&a, &b).powi(2) - squared_euclidean(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn early_abandon_agrees_when_within_limit() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.5, 2.0];
        let exact = euclidean(&a, &b);
        assert_eq!(euclidean_early_abandon(&a, &b, exact + 0.1), Some(exact));
    }

    #[test]
    fn early_abandon_bails_beyond_limit() {
        let a = [0.0; 100];
        let b = [1.0; 100];
        assert_eq!(euclidean_early_abandon(&a, &b, 0.5), None);
    }

    #[test]
    fn metric_properties() {
        let a = [1.0, 2.0];
        let b = [3.0, -1.0];
        let c = [0.0, 0.5];
        for d in [euclidean, manhattan, chebyshev] {
            assert_eq!(d(&a, &a), 0.0);
            assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-12);
            assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-12);
        }
    }

    #[test]
    fn ordering_between_norms() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 2.0, 2.0];
        assert!(chebyshev(&a, &b) <= euclidean(&a, &b));
        assert!(euclidean(&a, &b) <= manhattan(&a, &b));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }
}
