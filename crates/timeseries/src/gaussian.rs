//! Gaussian quantiles and SAX breakpoints.
//!
//! SAX assumes Z-normalized subsequences are Gaussian and chooses
//! breakpoints so every symbol is equiprobable (paper §2). The
//! breakpoints are the `1/a, 2/a, …, (a-1)/a` quantiles of the standard
//! normal distribution, computed here with the Acklam rational
//! approximation of the inverse normal CDF (|relative error| < 1.15e-9 —
//! far below what symbol quantization can observe).

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// # Panics
///
/// Panics unless `p` is strictly inside `(0, 1)`.
///
/// # Example
///
/// ```
/// use river_sax::gaussian::inv_norm_cdf;
///
/// assert!(inv_norm_cdf(0.5).abs() < 1e-9);
/// assert!((inv_norm_cdf(0.975) - 1.959964).abs() < 1e-5);
/// ```
pub fn inv_norm_cdf(p: f64) -> f64 {
    // Coefficients for the Acklam approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// CDF of the standard normal distribution (via `erf`-free Abramowitz &
/// Stegun 7.1.26 approximation; |error| < 1.5e-7). Used by tests to
/// verify breakpoint equiprobability.
pub fn norm_cdf(x: f64) -> f64 {
    // A&S 7.1.26 for erf.
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + y)
    } else {
        0.5 * (1.0 - y)
    }
}

/// The `alphabet - 1` SAX breakpoints for an alphabet of the given size:
/// the standard-normal quantiles at `i / alphabet`, `i = 1..alphabet`.
///
/// # Panics
///
/// Panics if `alphabet < 2`.
///
/// # Example
///
/// ```
/// use river_sax::gaussian::sax_breakpoints;
///
/// // The canonical alphabet-4 breakpoints from Lin et al.
/// let b = sax_breakpoints(4);
/// assert!((b[0] + 0.6745).abs() < 1e-3);
/// assert!(b[1].abs() < 1e-9);
/// assert!((b[2] - 0.6745).abs() < 1e-3);
/// ```
pub fn sax_breakpoints(alphabet: usize) -> Vec<f64> {
    assert!(alphabet >= 2, "alphabet must be at least 2, got {alphabet}");
    (1..alphabet)
        .map(|i| inv_norm_cdf(i as f64 / alphabet as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_cdf_known_quantiles() {
        // Classic table values.
        let cases = [
            (0.5, 0.0),
            (0.8413447, 1.0),
            (0.9772499, 2.0),
            (0.0013499, -3.0),
            (0.9986501, 3.0),
        ];
        for (p, z) in cases {
            assert!((inv_norm_cdf(p) - z).abs() < 1e-4, "p={p}");
        }
    }

    #[test]
    fn inv_cdf_is_odd_about_half() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            assert!(
                (inv_norm_cdf(p) + inv_norm_cdf(1.0 - p)).abs() < 1e-9,
                "p={p}"
            );
        }
    }

    #[test]
    fn cdf_inverts_quantile() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let z = inv_norm_cdf(p);
            assert!((norm_cdf(z) - p).abs() < 1e-5, "p={p} z={z}");
        }
    }

    #[test]
    fn breakpoints_are_sorted_and_symmetric() {
        for a in 2..=20 {
            let b = sax_breakpoints(a);
            assert_eq!(b.len(), a - 1);
            for w in b.windows(2) {
                assert!(w[0] < w[1]);
            }
            for i in 0..b.len() {
                assert!((b[i] + b[b.len() - 1 - i]).abs() < 1e-9, "a={a} i={i}");
            }
        }
    }

    #[test]
    fn breakpoints_yield_equiprobable_cells() {
        for a in [3usize, 5, 8, 10] {
            let b = sax_breakpoints(a);
            let mut prev = 0.0;
            for (i, &bp) in b.iter().enumerate() {
                let cum = norm_cdf(bp);
                let cell = cum - prev;
                assert!(
                    (cell - 1.0 / a as f64).abs() < 1e-4,
                    "alphabet {a} cell {i}: {cell}"
                );
                prev = cum;
            }
            assert!((1.0 - prev - 1.0 / a as f64).abs() < 1e-4);
        }
    }

    #[test]
    fn paper_alphabet_is_supported() {
        // The paper's experiments use alphabet size 8.
        let b = sax_breakpoints(8);
        assert_eq!(b.len(), 7);
        assert!(b[3].abs() < 1e-9); // median breakpoint at 0
    }

    #[test]
    #[should_panic(expected = "alphabet must be at least 2")]
    fn rejects_tiny_alphabet() {
        sax_breakpoints(1);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_p_out_of_range() {
        inv_norm_cdf(1.0);
    }
}
