//! # river-sax — time-series representation substrate
//!
//! Implements the time-series machinery of Kasten, McKinley & Gage
//! (DEPSA/ICDCS 2007, §2):
//!
//! - [`znorm`] — Z-normalization, "equalizing similar acoustic patterns
//!   that differ in signal strength";
//! - [`paa`](mod@paa) — Piecewise Aggregate Approximation (Keogh et al.; Yi &
//!   Faloutsos), which "smoothes intra-signal variation and reduces
//!   pattern dimensionality";
//! - [`sax`] — Symbolic Aggregate approXimation (Lin et al.), mapping PAA
//!   segments to symbols that are equiprobable under a Gaussian
//!   assumption;
//! - [`bitmap`] — SAX bitmaps (Kumar et al.): n-gram frequency matrices
//!   whose Euclidean distance yields an anomaly score;
//! - [`anomaly`] — the **streaming** lag/lead-window bitmap anomaly
//!   detector used by the paper's `saxanomaly` operator (single scan,
//!   O(1) state update per sample);
//! - [`discord`] and [`motif`] — the related-work notions (HOT SAX
//!   discords, frequent motifs) that the paper positions ensembles
//!   against (§5); provided so the repository can compare all three.
//!
//! ## Example: streaming anomaly scores
//!
//! ```
//! use river_sax::anomaly::{AnomalyConfig, BitmapAnomaly};
//!
//! let cfg = AnomalyConfig { window: 32, alphabet: 4, ngram: 2, ..AnomalyConfig::default() };
//! let mut detector = BitmapAnomaly::new(cfg);
//! let mut scores = Vec::new();
//! for i in 0..500 {
//!     // Quiet noise with a burst in the middle.
//!     let x = if (250..280).contains(&i) { (i as f64).sin() * 5.0 } else { (i as f64 * 7.7).sin() * 0.1 };
//!     scores.push(detector.push(x));
//! }
//! let burst_peak = scores[250..300].iter().cloned().fold(0.0, f64::max);
//! let quiet_peak = scores[100..200].iter().cloned().fold(0.0, f64::max);
//! assert!(burst_peak > quiet_peak);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod bitmap;
pub mod discord;
pub mod distance;
pub mod gaussian;
pub mod motif;
pub mod paa;
pub mod sax;
pub mod znorm;

pub use anomaly::{AnomalyConfig, BitmapAnomaly};
pub use bitmap::SaxBitmap;
pub use paa::paa;
pub use sax::{SaxEncoder, SaxWord};
pub use znorm::znormalize;
