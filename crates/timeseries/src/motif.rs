//! Motif discovery (Lin et al. 2002).
//!
//! A motif is "a sequence that occurs frequently" (paper §2/§5). The
//! paper frames ensembles as *candidate* motifs or discords; this module
//! lets the repository close that loop — extracted ensembles can be
//! checked for recurrence by motif search.

use crate::distance::euclidean;
use crate::sax::{SaxEncoder, SaxWord};
use crate::znorm::znormalize;
use std::collections::HashMap;

/// A discovered motif: a SAX word and the subsequence positions where it
/// occurs.
#[derive(Debug, Clone, PartialEq)]
pub struct Motif {
    /// The SAX word shared by all occurrences.
    pub word: SaxWord,
    /// Start indices of (trivial-match-pruned) occurrences, ascending.
    pub positions: Vec<usize>,
    /// Subsequence length.
    pub length: usize,
}

impl Motif {
    /// Number of occurrences.
    pub fn support(&self) -> usize {
        self.positions.len()
    }
}

/// Finds the `k` most frequent motifs of length `len`, projecting every
/// subsequence to a SAX word (`alphabet`, `word_len`) and ranking words
/// by support. Trivial matches (overlapping occurrences of the same
/// word) are pruned: consecutive kept positions differ by at least
/// `len`.
///
/// # Panics
///
/// Panics if `len == 0` or `word_len == 0` or `word_len > len`.
///
/// # Example
///
/// ```
/// use river_sax::motif::find_motifs;
///
/// // A beat that repeats every 50 samples stands out as a motif.
/// let series: Vec<f64> = (0..500)
///     .map(|i| if i % 50 < 10 { (i as f64 * 1.3).sin() * 2.0 } else { 0.01 * (i as f64).cos() })
///     .collect();
/// let motifs = find_motifs(&series, 10, 4, 4, 3);
/// assert!(!motifs.is_empty());
/// assert!(motifs[0].support() >= 2);
/// ```
pub fn find_motifs(
    series: &[f64],
    len: usize,
    alphabet: usize,
    word_len: usize,
    k: usize,
) -> Vec<Motif> {
    assert!(len > 0, "motif length must be non-zero");
    assert!(
        word_len > 0 && word_len <= len,
        "word_len must be in 1..=len"
    );
    if series.len() < len || k == 0 {
        return Vec::new();
    }
    let enc = SaxEncoder::new(alphabet, word_len);
    let n_subs = series.len() - len + 1;
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    for i in 0..n_subs {
        let word = enc.encode(&series[i..i + len]);
        table.entry(word.0).or_default().push(i);
    }
    let mut motifs: Vec<Motif> = table
        .into_iter()
        .map(|(symbols, positions)| {
            // Prune trivial matches: keep positions at least `len` apart.
            let mut kept: Vec<usize> = Vec::new();
            for p in positions {
                if kept.last().is_none_or(|&last| p >= last + len) {
                    kept.push(p);
                }
            }
            Motif {
                word: SaxWord(symbols),
                positions: kept,
                length: len,
            }
        })
        .filter(|m| m.support() >= 2)
        .collect();
    motifs.sort_by(|a, b| b.support().cmp(&a.support()).then(a.word.0.cmp(&b.word.0)));
    motifs.truncate(k);
    motifs
}

/// Mean pairwise (Z-normalized) Euclidean distance between a motif's
/// occurrences — a verification score; genuine motifs score low.
pub fn motif_cohesion(series: &[f64], motif: &Motif) -> f64 {
    let subs: Vec<Vec<f64>> = motif
        .positions
        .iter()
        .map(|&p| znormalize(&series[p..p + motif.length]))
        .collect();
    if subs.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..subs.len() {
        for j in i + 1..subs.len() {
            total += euclidean(&subs[i], &subs[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repeating_series() -> Vec<f64> {
        (0..600)
            .map(|i| {
                if i % 60 < 15 {
                    ((i % 60) as f64 * 0.8).sin() * 2.0
                } else {
                    ((i * 31) as f64 * 0.001).sin() * 0.05
                }
            })
            .collect()
    }

    #[test]
    fn repeated_pattern_found_with_high_support() {
        let s = repeating_series();
        let motifs = find_motifs(&s, 15, 4, 5, 5);
        assert!(!motifs.is_empty());
        // The beat repeats 10 times.
        assert!(motifs[0].support() >= 5, "support {}", motifs[0].support());
    }

    #[test]
    fn positions_are_non_overlapping() {
        let s = repeating_series();
        for m in find_motifs(&s, 15, 4, 5, 5) {
            for w in m.positions.windows(2) {
                assert!(w[1] - w[0] >= m.length);
            }
        }
    }

    #[test]
    fn cohesion_lower_for_true_motif_than_random_pairing() {
        let s = repeating_series();
        let motifs = find_motifs(&s, 15, 4, 5, 1);
        let true_motif = &motifs[0];
        let cohesion = motif_cohesion(&s, true_motif);
        // Compare against a fake motif of arbitrary positions.
        let fake = Motif {
            word: true_motif.word.clone(),
            positions: vec![3, 40, 77],
            length: 15,
        };
        let fake_cohesion = motif_cohesion(&s, &fake);
        assert!(
            cohesion < fake_cohesion,
            "true {cohesion} vs fake {fake_cohesion}"
        );
    }

    #[test]
    fn no_motifs_in_tiny_series() {
        assert!(find_motifs(&[1.0; 4], 8, 4, 4, 3).is_empty());
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(find_motifs(&repeating_series(), 15, 4, 5, 0).is_empty());
    }

    #[test]
    fn singleton_words_filtered() {
        for m in find_motifs(&repeating_series(), 15, 4, 5, 100) {
            assert!(m.support() >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "word_len must be in")]
    fn rejects_word_longer_than_motif() {
        find_motifs(&[0.0; 100], 4, 4, 8, 1);
    }
}
