//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA converts a length-`n` sequence into `w ≤ n` segment means (paper
//! §2, after Keogh et al. and Yi & Faloutsos). The pipeline's optional
//! `paa` operator reduces each 350-bin spectral record by a factor of 10
//! to 35 values (so a 1050-feature pattern becomes 105 features).

/// Reduces `q` to `segments` segment means.
///
/// When `q.len()` is not a multiple of `segments`, fractional boundaries
/// are handled by weighting edge samples proportionally (the standard
/// generalized-PAA formulation), so every input sample contributes
/// exactly once in total.
///
/// # Panics
///
/// Panics if `segments == 0` or `segments > q.len()` for non-empty input.
///
/// # Example
///
/// ```
/// use river_sax::paa;
///
/// let reduced = paa(&[1.0, 3.0, 5.0, 7.0], 2);
/// assert_eq!(reduced, vec![2.0, 6.0]);
/// ```
pub fn paa(q: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "segments must be non-zero");
    if q.is_empty() {
        return Vec::new();
    }
    assert!(
        segments <= q.len(),
        "cannot expand: {segments} segments for {} samples",
        q.len()
    );
    let n = q.len();
    if segments == n {
        return q.to_vec();
    }
    // Exact-division fast path.
    if n.is_multiple_of(segments) {
        let len = n / segments;
        return q
            .chunks_exact(len)
            .map(|c| c.iter().sum::<f64>() / len as f64)
            .collect();
    }
    // General case: distribute samples fractionally across segments.
    let seg_len = n as f64 / segments as f64;
    let mut out = Vec::with_capacity(segments);
    for s in 0..segments {
        let start = s as f64 * seg_len;
        let end = start + seg_len;
        let mut acc = 0.0;
        let mut i = start.floor() as usize;
        while (i as f64) < end && i < n {
            let lo = (i as f64).max(start);
            let hi = ((i + 1) as f64).min(end);
            acc += q[i] * (hi - lo);
            i += 1;
        }
        out.push(acc / seg_len);
    }
    out
}

/// Reduces `q` by an integer factor: output length is
/// `ceil(q.len() / factor)`; the final segment may cover fewer samples.
///
/// This is the record-oriented form used by the pipeline's `paa`
/// operator ("reduced by a factor of 10", paper §3/§4).
///
/// # Panics
///
/// Panics if `factor == 0`.
///
/// # Example
///
/// ```
/// use river_sax::paa::paa_by_factor;
///
/// assert_eq!(paa_by_factor(&[2.0, 4.0, 6.0, 8.0, 10.0], 2), vec![3.0, 7.0, 10.0]);
/// ```
pub fn paa_by_factor(q: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "factor must be non-zero");
    q.chunks(factor)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Reconstructs an approximation of the original sequence from PAA
/// segment means by holding each mean over its segment (useful for
/// visualizing the Figure 3 PAA spectrogram at original scale).
pub fn paa_inverse(means: &[f64], n: usize) -> Vec<f64> {
    if means.is_empty() || n == 0 {
        return vec![0.0; n];
    }
    let seg_len = n as f64 / means.len() as f64;
    (0..n)
        .map(|i| {
            let s = ((i as f64 / seg_len) as usize).min(means.len() - 1);
            means[s]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        assert_eq!(paa(&[1.0, 1.0, 5.0, 5.0], 2), vec![1.0, 5.0]);
    }

    #[test]
    fn identity_when_segments_equal_len() {
        let q = vec![3.0, 1.0, 4.0];
        assert_eq!(paa(&q, 3), q);
    }

    #[test]
    fn single_segment_is_mean() {
        let q = vec![2.0, 4.0, 9.0];
        assert_eq!(paa(&q, 1), vec![5.0]);
    }

    #[test]
    fn fractional_boundaries_preserve_total_mass() {
        // 5 samples into 2 segments: each segment covers 2.5 samples.
        let q = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let r = paa(&q, 2);
        // Sum of (mean * seg_len) must equal the sum of the input.
        let mass: f64 = r.iter().map(|m| m * 2.5).sum();
        assert!((mass - 15.0).abs() < 1e-12);
        // First segment: 1 + 2 + half of 3 = 4.5 over 2.5 -> 1.8
        assert!((r[0] - 1.8).abs() < 1e-12);
        assert!((r[1] - 4.2).abs() < 1e-12);
    }

    #[test]
    fn preserves_mean_of_signal() {
        let q: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        for &w in &[4usize, 7, 10, 33] {
            let r = paa(&q, w);
            let mean_q: f64 = q.iter().sum::<f64>() / q.len() as f64;
            let mean_r: f64 = r.iter().sum::<f64>() / r.len() as f64;
            assert!((mean_q - mean_r).abs() < 1e-9, "w={w}");
        }
    }

    #[test]
    fn smoothing_reduces_variance() {
        let q: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761usize) % 1000) as f64)
            .collect();
        let r = paa(&q, 10);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&r) < var(&q));
    }

    #[test]
    fn by_factor_shapes() {
        assert_eq!(paa_by_factor(&[1.0; 350], 10).len(), 35);
        assert_eq!(paa_by_factor(&[1.0; 351], 10).len(), 36);
        assert_eq!(paa_by_factor(&[4.0, 8.0], 5), vec![6.0]);
    }

    #[test]
    fn inverse_holds_segments() {
        let rec = paa_inverse(&[1.0, 2.0], 4);
        assert_eq!(rec, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn inverse_empty() {
        assert_eq!(paa_inverse(&[], 3), vec![0.0; 3]);
        assert!(paa_inverse(&[1.0], 0).is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(paa(&[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot expand")]
    fn rejects_expansion() {
        paa(&[1.0, 2.0], 5);
    }

    #[test]
    #[should_panic(expected = "segments must be non-zero")]
    fn rejects_zero_segments() {
        paa(&[1.0], 0);
    }
}
