//! Symbolic Aggregate approXimation (SAX).
//!
//! SAX converts a (Z-normalized, PAA-reduced) sequence to symbols chosen
//! so that each "appears with equal probability based on the assumption
//! that the distribution of time series subsequences is Gaussian" (paper
//! §2, Figure 4). Symbols are small integers `0..alphabet`, matching the
//! paper's use of integers in Figure 4.

use crate::gaussian::sax_breakpoints;
use crate::paa::paa;
use crate::znorm::znormalize;
use std::fmt;

/// A SAX symbol: an index into the alphabet, `0` = lowest amplitude
/// band.
pub type Symbol = u8;

/// A SAX word: the symbol sequence for one subsequence.
///
/// # Example
///
/// ```
/// use river_sax::{SaxEncoder, SaxWord};
///
/// let enc = SaxEncoder::new(5, 9);
/// let series: Vec<f64> = (0..27).map(|i| (i as f64 * 0.7).sin()).collect();
/// let word = enc.encode(&series);
/// assert_eq!(word.len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SaxWord(pub Vec<Symbol>);

impl SaxWord {
    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the word has no symbols.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The symbols as a slice.
    pub fn symbols(&self) -> &[Symbol] {
        &self.0
    }
}

impl fmt::Display for SaxWord {
    /// Formats as the 1-based integer string used in the paper's
    /// Figure 4, e.g. `2 3 2 4`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.0 {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", s + 1)?;
            first = false;
        }
        Ok(())
    }
}

impl From<Vec<Symbol>> for SaxWord {
    fn from(v: Vec<Symbol>) -> Self {
        SaxWord(v)
    }
}

/// Encodes sequences into SAX words.
#[derive(Debug, Clone)]
pub struct SaxEncoder {
    alphabet: usize,
    word_len: usize,
    breakpoints: Vec<f64>,
}

impl SaxEncoder {
    /// Creates an encoder with the given alphabet size and output word
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet < 2`, `alphabet > 256`, or `word_len == 0`.
    pub fn new(alphabet: usize, word_len: usize) -> Self {
        assert!((2..=256).contains(&alphabet), "alphabet must be in 2..=256");
        assert!(word_len > 0, "word length must be non-zero");
        SaxEncoder {
            alphabet,
            word_len,
            breakpoints: sax_breakpoints(alphabet),
        }
    }

    /// The alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The output word length.
    pub fn word_len(&self) -> usize {
        self.word_len
    }

    /// Quantizes one already-normalized value to a symbol.
    ///
    /// Values below the first breakpoint map to symbol 0; above the last
    /// to `alphabet - 1`.
    #[inline]
    pub fn quantize(&self, z: f64) -> Symbol {
        // partition_point returns the count of breakpoints <= z, which is
        // exactly the symbol index.
        self.breakpoints.partition_point(|&b| b <= z) as Symbol
    }

    /// Full SAX pipeline for a raw subsequence: Z-normalize → PAA to
    /// `word_len` segments → quantize.
    ///
    /// # Panics
    ///
    /// Panics if `series.len() < self.word_len()`.
    pub fn encode(&self, series: &[f64]) -> SaxWord {
        let z = znormalize(series);
        let reduced = paa(&z, self.word_len);
        SaxWord(reduced.iter().map(|&v| self.quantize(v)).collect())
    }

    /// Encodes an already-normalized, already-reduced PAA vector
    /// (used when the caller manages normalization, e.g. Figure 4's
    /// demonstration, or the streaming symbolizer).
    pub fn encode_paa(&self, reduced: &[f64]) -> SaxWord {
        SaxWord(reduced.iter().map(|&v| self.quantize(v)).collect())
    }

    /// MINDIST lower-bound distance between two equal-length SAX words
    /// (Lin et al. 2003): zero for adjacent symbols, breakpoint gap
    /// otherwise, scaled by `sqrt(n / w)` where `n` is the original
    /// subsequence length.
    ///
    /// # Panics
    ///
    /// Panics if word lengths differ.
    pub fn mindist(&self, a: &SaxWord, b: &SaxWord, original_len: usize) -> f64 {
        assert_eq!(a.len(), b.len(), "word lengths must match");
        let w = a.len();
        if w == 0 {
            return 0.0;
        }
        let cell = |x: Symbol, y: Symbol| -> f64 {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            if hi - lo <= 1 {
                0.0
            } else {
                self.breakpoints[hi as usize - 1] - self.breakpoints[lo as usize]
            }
        };
        let sum: f64 = a
            .symbols()
            .iter()
            .zip(b.symbols())
            .map(|(&x, &y)| {
                let d = cell(x, y);
                d * d
            })
            .sum();
        (original_len as f64 / w as f64).sqrt() * sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_breakpoints() {
        let enc = SaxEncoder::new(4, 4);
        // Alphabet 4 breakpoints: [-0.6745, 0, 0.6745]
        assert_eq!(enc.quantize(-2.0), 0);
        assert_eq!(enc.quantize(-0.5), 1);
        assert_eq!(enc.quantize(0.5), 2);
        assert_eq!(enc.quantize(2.0), 3);
    }

    #[test]
    fn quantize_boundary_goes_to_upper_cell() {
        let enc = SaxEncoder::new(4, 4);
        assert_eq!(enc.quantize(0.0), 2);
    }

    #[test]
    fn symbols_roughly_equiprobable_on_gaussian_like_data() {
        // A slowly sweeping sinusoid covers amplitudes smoothly; after
        // Z-normalization the symbol histogram must not be degenerate.
        let enc = SaxEncoder::new(8, 1000);
        let series: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.013).sin()).collect();
        let word = enc.encode(&series[..1000]);
        let mut counts = [0usize; 8];
        for &s in word.symbols() {
            counts[s as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "symbol {i} never used: {counts:?}");
        }
    }

    #[test]
    fn constant_series_maps_to_middle_symbols() {
        let enc = SaxEncoder::new(8, 4);
        let word = enc.encode(&[5.0; 16]);
        // Z-norm of constant = 0s; 0 quantizes to symbol 4 (upper middle of 8).
        assert_eq!(word.symbols(), &[4, 4, 4, 4]);
    }

    #[test]
    fn amplitude_invariance() {
        let enc = SaxEncoder::new(6, 8);
        let base: Vec<f64> = (0..64).map(|i| (i as f64 * 0.41).sin()).collect();
        let loud: Vec<f64> = base.iter().map(|x| x * 50.0 + 7.0).collect();
        assert_eq!(enc.encode(&base), enc.encode(&loud));
    }

    #[test]
    fn display_matches_paper_notation() {
        let w = SaxWord(vec![1, 2, 1, 3]);
        assert_eq!(w.to_string(), "2 3 2 4");
    }

    #[test]
    fn figure4_style_conversion() {
        // Reproduce the shape of the paper's Figure 4: an 18-segment PAA
        // sequence over alphabet 5 yields symbols 1..=5.
        let enc = SaxEncoder::new(5, 18);
        let series: Vec<f64> = (0..180)
            .map(|i| (i as f64 * 0.08).sin() + 0.3 * (i as f64 * 0.31).cos())
            .collect();
        let word = enc.encode(&series);
        assert_eq!(word.len(), 18);
        assert!(word.symbols().iter().all(|&s| s < 5));
    }

    #[test]
    fn mindist_zero_for_adjacent_symbols() {
        let enc = SaxEncoder::new(4, 2);
        let a = SaxWord(vec![1, 2]);
        let b = SaxWord(vec![2, 1]);
        assert_eq!(enc.mindist(&a, &b, 16), 0.0);
    }

    #[test]
    fn mindist_positive_for_distant_symbols() {
        let enc = SaxEncoder::new(4, 2);
        let a = SaxWord(vec![0, 0]);
        let b = SaxWord(vec![3, 3]);
        assert!(enc.mindist(&a, &b, 16) > 0.0);
    }

    #[test]
    fn mindist_symmetric() {
        let enc = SaxEncoder::new(8, 4);
        let a = SaxWord(vec![0, 7, 3, 2]);
        let b = SaxWord(vec![5, 1, 3, 6]);
        assert_eq!(enc.mindist(&a, &b, 32), enc.mindist(&b, &a, 32));
    }

    #[test]
    fn mindist_identity_is_zero() {
        let enc = SaxEncoder::new(8, 4);
        let a = SaxWord(vec![0, 7, 3, 2]);
        assert_eq!(enc.mindist(&a, &a, 32), 0.0);
    }

    #[test]
    #[should_panic(expected = "word lengths must match")]
    fn mindist_rejects_mismatched_words() {
        let enc = SaxEncoder::new(4, 2);
        enc.mindist(&SaxWord(vec![0]), &SaxWord(vec![0, 1]), 8);
    }

    #[test]
    #[should_panic(expected = "alphabet must be in")]
    fn rejects_giant_alphabet() {
        SaxEncoder::new(300, 4);
    }
}
