//! Z-normalization.
//!
//! The first step of PAA/SAX conversion (paper §2): each element of a
//! sequence `Q` is replaced by `(q_i - μ) / σ`. This equalizes "similar
//! acoustic patterns that differ in signal strength".

/// Z-normalizes a sequence: subtracts the mean and divides by the
/// population standard deviation.
///
/// A sequence with zero variance (constant, or empty) normalizes to all
/// zeros rather than dividing by zero; this matches the convention used
/// by the SAX reference implementations, where flat subsequences map to
/// the middle symbol.
///
/// # Example
///
/// ```
/// use river_sax::znormalize;
///
/// let z = znormalize(&[2.0, 4.0, 6.0]);
/// assert!(z[1].abs() < 1e-12);              // mean removed
/// assert!((z[2] + z[0]).abs() < 1e-12);     // symmetric
/// ```
pub fn znormalize(q: &[f64]) -> Vec<f64> {
    let mut out = q.to_vec();
    znormalize_in_place(&mut out);
    out
}

/// In-place variant of [`znormalize`].
pub fn znormalize_in_place(q: &mut [f64]) {
    if q.is_empty() {
        return;
    }
    let n = q.len() as f64;
    let mean = q.iter().sum::<f64>() / n;
    let var = q.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std == 0.0 || !std.is_finite() {
        q.fill(0.0);
        return;
    }
    for x in q.iter_mut() {
        *x = (*x - mean) / std;
    }
}

/// Normalizes one value against an externally maintained mean and
/// standard deviation (the streaming form used by the `saxanomaly`
/// operator with a sliding window). A non-positive or non-finite `std`
/// maps to `0.0`.
#[inline]
pub fn znorm_value(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 || !std.is_finite() {
        0.0
    } else {
        (x - mean) / std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_has_zero_mean_unit_variance() {
        let q: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 7.0 + 3.0)
            .collect();
        let z = znormalize(&q);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_offset_invariance() {
        let q: Vec<f64> = (0..64).map(|i| (i as f64 * 0.9).cos()).collect();
        let shifted: Vec<f64> = q.iter().map(|x| x * 5.0 + 100.0).collect();
        let za = znormalize(&q);
        let zb = znormalize(&shifted);
        for (a, b) in za.iter().zip(&zb) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_sequence_maps_to_zeros() {
        assert_eq!(znormalize(&[4.2; 8]), vec![0.0; 8]);
    }

    #[test]
    fn empty_sequence() {
        assert!(znormalize(&[]).is_empty());
    }

    #[test]
    fn in_place_matches_copying() {
        let q = vec![1.0, -2.0, 7.5, 0.0];
        let copied = znormalize(&q);
        let mut in_place = q.clone();
        znormalize_in_place(&mut in_place);
        assert_eq!(copied, in_place);
    }

    #[test]
    fn znorm_value_streaming_form() {
        assert_eq!(znorm_value(5.0, 3.0, 2.0), 1.0);
        assert_eq!(znorm_value(5.0, 3.0, 0.0), 0.0);
        assert_eq!(znorm_value(5.0, 3.0, f64::NAN), 0.0);
    }
}
