//! Property-based tests for the SAX substrate.

use proptest::prelude::*;
use river_sax::anomaly::{anomaly_scores, AnomalyConfig, Normalization};
use river_sax::bitmap::SaxBitmap;
use river_sax::gaussian::{norm_cdf, sax_breakpoints};
use river_sax::paa::{paa, paa_by_factor};
use river_sax::sax::SaxEncoder;
use river_sax::znorm::znormalize;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Z-normalization always yields zero mean and unit variance (or all
    /// zeros for constant input).
    #[test]
    fn znorm_invariants(xs in prop::collection::vec(-1e4f64..1e4, 2..256)) {
        let z = znormalize(&xs);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        prop_assert!(mean.abs() < 1e-6);
        let var: f64 = z.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / z.len() as f64;
        prop_assert!(var < 1.0 + 1e-6);
        // Either unit variance or the degenerate all-zero case.
        prop_assert!((var - 1.0).abs() < 1e-6 || z.iter().all(|&v| v == 0.0));
    }

    /// PAA preserves the mean of the signal for any segment count.
    #[test]
    fn paa_preserves_mean(
        xs in prop::collection::vec(-1e3f64..1e3, 4..256),
        frac in 0.05f64..1.0,
    ) {
        let segments = ((xs.len() as f64 * frac) as usize).clamp(1, xs.len());
        let r = paa(&xs, segments);
        prop_assert_eq!(r.len(), segments);
        let mean_x: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_r: f64 = r.iter().sum::<f64>() / r.len() as f64;
        prop_assert!((mean_x - mean_r).abs() < 1e-6 * (1.0 + mean_x.abs()));
    }

    /// PAA output values always lie within [min, max] of the input.
    #[test]
    fn paa_within_input_range(
        xs in prop::collection::vec(-1e3f64..1e3, 4..128),
        frac in 0.05f64..1.0,
    ) {
        let segments = ((xs.len() as f64 * frac) as usize).clamp(1, xs.len());
        let lo = xs.iter().copied().fold(f64::MAX, f64::min);
        let hi = xs.iter().copied().fold(f64::MIN, f64::max);
        for v in paa(&xs, segments) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// paa_by_factor output length is ceil(n / factor).
    #[test]
    fn paa_by_factor_length(
        xs in prop::collection::vec(-1.0f64..1.0, 1..300),
        factor in 1usize..20,
    ) {
        let r = paa_by_factor(&xs, factor);
        prop_assert_eq!(r.len(), xs.len().div_ceil(factor));
    }

    /// SAX encoding is invariant under affine amplitude changes
    /// (positive scale).
    #[test]
    fn sax_amplitude_invariance(
        xs in prop::collection::vec(-100.0f64..100.0, 16..128),
        scale in 0.01f64..100.0,
        offset in -100.0f64..100.0,
        alphabet in 2usize..16,
    ) {
        let word_len = 8.min(xs.len());
        let enc = SaxEncoder::new(alphabet, word_len);
        let transformed: Vec<f64> = xs.iter().map(|x| x * scale + offset).collect();
        prop_assert_eq!(enc.encode(&xs), enc.encode(&transformed));
    }

    /// All SAX symbols are within the alphabet.
    #[test]
    fn sax_symbols_in_range(
        xs in prop::collection::vec(-100.0f64..100.0, 8..128),
        alphabet in 2usize..20,
    ) {
        let enc = SaxEncoder::new(alphabet, 8.min(xs.len()));
        for &s in enc.encode(&xs).symbols() {
            prop_assert!((s as usize) < alphabet);
        }
    }

    /// Breakpoints are strictly increasing and equiprobable under the
    /// normal CDF.
    #[test]
    fn breakpoints_equiprobable(alphabet in 2usize..24) {
        let b = sax_breakpoints(alphabet);
        let mut prev_cum = 0.0;
        for &bp in &b {
            let cum = norm_cdf(bp);
            prop_assert!((cum - prev_cum - 1.0 / alphabet as f64).abs() < 1e-3);
            prev_cum = cum;
        }
    }

    /// Bitmap frequencies sum to 1 after counting any sequence of
    /// sufficient length.
    #[test]
    fn bitmap_frequencies_normalized(
        symbols in prop::collection::vec(0u8..4, 2..200),
        ngram in 1usize..3,
    ) {
        let mut bm = SaxBitmap::new(4, ngram);
        bm.count_sequence(&symbols);
        if bm.total() > 0 {
            let sum: f64 = bm.frequencies().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Incremental add/remove leaves the bitmap exactly as batch counting
    /// of the surviving window (sliding-window equivalence).
    #[test]
    fn bitmap_sliding_equivalence(
        symbols in prop::collection::vec(0u8..4, 10..100),
        window in 4usize..16,
    ) {
        let ngram = 2;
        let mut inc = SaxBitmap::new(4, ngram);
        for (i, gram) in symbols.windows(ngram).enumerate() {
            inc.add(gram);
            if i >= window {
                inc.remove(&symbols[i - window..i - window + ngram]);
            }
        }
        // Batch count over the last `window` gram start positions.
        let n_grams = symbols.len() - ngram + 1;
        let start = n_grams.saturating_sub(window);
        let mut batch = SaxBitmap::new(4, ngram);
        for i in start..n_grams {
            batch.add(&symbols[i..i + ngram]);
        }
        prop_assert_eq!(inc.total(), batch.total());
        prop_assert!(inc.distance(&batch) < 1e-12);
    }

    /// Anomaly scores are always finite, non-negative, and bounded by
    /// sqrt(2).
    #[test]
    fn anomaly_scores_bounded(
        xs in prop::collection::vec(-10.0f64..10.0, 1..400),
        window in 4usize..32,
        alphabet in 2usize..10,
    ) {
        let cfg = AnomalyConfig {
            window,
            alphabet,
            ngram: 2.min(window),
            normalization: Normalization::Global,
        };
        for s in anomaly_scores(&xs, cfg) {
            prop_assert!(s.is_finite());
            prop_assert!((0.0..=std::f64::consts::SQRT_2 + 1e-9).contains(&s));
        }
    }

    /// The detector is amplitude-scale invariant under global
    /// normalization: scaling the whole stream leaves scores unchanged.
    #[test]
    fn anomaly_scale_invariance(
        xs in prop::collection::vec(-1.0f64..1.0, 100..300),
        scale in 0.1f64..50.0,
    ) {
        let cfg = AnomalyConfig {
            window: 16,
            alphabet: 4,
            ngram: 2,
            normalization: Normalization::Global,
        };
        let a = anomaly_scores(&xs, cfg);
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let b = anomaly_scores(&scaled, cfg);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
