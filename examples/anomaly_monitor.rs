//! Continuous anomaly monitor: feeds a long acoustic stream through the
//! single-scan detector sample by sample — the "timely, automated
//! processing of continuous streams" the paper targets (§5) — and
//! reports events as the trigger fires.
//!
//! ```text
//! cargo run --release --example anomaly_monitor
//! ```

use acoustic_ensembles::core::extract::AdaptiveTrigger;
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::dsp::MovingAverage;
use acoustic_ensembles::sax::anomaly::BitmapAnomaly;

fn main() {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::paper());

    // A "continuous" stream: several clips of different species back to
    // back, as a sensor station would deliver them.
    let sequence = [
        (SpeciesCode::Noca, 1u64),
        (SpeciesCode::Dowo, 2),
        (SpeciesCode::Modo, 3),
    ];

    let mut detector = BitmapAnomaly::new(cfg.anomaly_config());
    let mut smoother = MovingAverage::new(cfg.ma_window);
    let warmup = (2 * cfg.anomaly_window + cfg.ma_window) as u64;
    let mut trigger = AdaptiveTrigger::with_hold(cfg.trigger_sigmas, warmup, cfg.trigger_hold as u64);

    let mut t = 0u64; // absolute sample clock
    let mut event_start: Option<u64> = None;
    let mut events = 0usize;
    println!("monitoring stream (single scan, O(window) state)...\n");
    for (species, seed) in sequence {
        let clip = synth.clip(species, seed);
        println!(
            "-- clip of {} arrives ({} bouts at {:?})",
            species.code(),
            clip.events.len(),
            clip.events
                .iter()
                .map(|e| format!("{:.1}s", e.start as f64 / clip.sample_rate))
                .collect::<Vec<_>>()
        );
        for &x in &clip.samples {
            let score = smoother.push(detector.push(x));
            let high = trigger.push(score);
            match (event_start, high) {
                (None, true) => event_start = Some(t),
                (Some(start), false) => {
                    let dur = (t - start) as f64 / cfg.sample_rate;
                    if (t - start) as usize >= cfg.min_ensemble_samples {
                        events += 1;
                        println!(
                            "   EVENT {events}: {:.1}s..{:.1}s ({dur:.2}s) score peak ~{score:.3}",
                            start as f64 / cfg.sample_rate,
                            t as f64 / cfg.sample_rate,
                        );
                    }
                    event_start = None;
                }
                _ => {}
            }
            t += 1;
        }
    }
    println!(
        "\nmonitored {:.0} s of audio, detected {events} events; detector state stayed O(window).",
        t as f64 / cfg.sample_rate
    );
}
