//! Continuous anomaly monitor: feeds a long acoustic stream through the
//! streaming ensemble extractor chunk by chunk — the "timely, automated
//! processing of continuous streams" the paper targets (§5) — and
//! reports each ensemble the moment its trigger releases.
//!
//! The extractor's state is the SAX/normalization windows, the
//! moving-average window, the trigger estimate, and the currently open
//! ensemble: O(window), however long the stream runs.
//!
//! ```text
//! cargo run --release --example anomaly_monitor
//! ```

use acoustic_ensembles::core::prelude::*;

fn main() {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::paper());

    // A "continuous" stream: several clips of different species back to
    // back, as a sensor station would deliver them.
    let sequence = [
        (SpeciesCode::Noca, 1u64),
        (SpeciesCode::Dowo, 2),
        (SpeciesCode::Modo, 3),
    ];

    let extractor = EnsembleExtractor::new(cfg);
    let mut stream = extractor.extract_stream();
    let mut events = 0usize;
    println!("monitoring stream (single scan, O(window) state)...\n");
    for (species, seed) in sequence {
        let clip = synth.clip(species, seed);
        println!(
            "-- clip of {} arrives ({} bouts at {:?})",
            species.code(),
            clip.events.len(),
            clip.events
                .iter()
                .map(|e| format!("{:.1}s", e.start as f64 / clip.sample_rate))
                .collect::<Vec<_>>()
        );
        // Record-sized chunks, reported as soon as they complete — no
        // per-clip batch, no buffering beyond the open ensemble.
        let mut completed = Vec::new();
        for chunk in clip.samples.chunks(cfg.record_len) {
            stream.push_chunk(chunk, &mut completed);
            for e in completed.drain(..) {
                events += 1;
                println!(
                    "   EVENT {events}: {:.1}s..{:.1}s ({:.2}s, {} samples)",
                    e.start as f64 / cfg.sample_rate,
                    e.end as f64 / cfg.sample_rate,
                    e.duration(cfg.sample_rate),
                    e.len(),
                );
            }
        }
    }
    // End of monitoring session: close a still-open ensemble.
    if let Some(e) = stream.finish() {
        events += 1;
        println!(
            "   EVENT {events}: {:.1}s.. (open at shutdown, {} samples)",
            e.start as f64 / cfg.sample_rate,
            e.len()
        );
    }
    println!(
        "\nmonitored {:.0} s of audio, detected {events} events; extractor state stayed O(window).",
        stream.samples_seen() as f64 / cfg.sample_rate
    );
}
