//! Distributed pipeline: three "hosts" connected over real TCP sockets,
//! exactly the Dynamic River composition of the paper's Figure 5 —
//! sensor → extraction segment → analysis sink — followed by a
//! demonstration of fault recovery (`BadCloseScope` synthesis) and
//! dynamic segment relocation between in-process hosts.
//!
//! ```text
//! cargo run --release --example distributed_pipeline
//! ```

use acoustic_ensembles::core::ops::clip_to_records;
use acoustic_ensembles::core::pipeline::extraction_segment;
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::river::net::{send_all, serve_once};
use acoustic_ensembles::river::prelude::*;
use acoustic_ensembles::river::segment::{run_network_segment, RelocatablePipeline};
use crossbeam::channel::unbounded;
use std::net::TcpListener;
use std::thread;

fn main() {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Rwbl, 11);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    let records = clip_to_records(
        &clip.samples[..usable],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    );
    println!(
        "sensor host: one 30 s clip -> {} records ({} audio)",
        records.len(),
        records.len() - 2
    );

    // ---- Part 1: three hosts over TCP -------------------------------
    let segment_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let segment_addr = segment_listener.local_addr().unwrap();
    let sink_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let sink_addr = sink_listener.local_addr().unwrap();

    // Host C: analysis sink.
    let sink = thread::spawn(move || {
        let mut records: Vec<Record> = Vec::new();
        let (end, streamin_received) = serve_once(&sink_listener, &mut records).unwrap();
        (end, streamin_received, records)
    });
    // Host B: the extraction segment (saxanomaly -> trigger -> cutter).
    let seg_cfg = cfg;
    let segment = thread::spawn(move || {
        run_network_segment(&segment_listener, sink_addr, extraction_segment(seg_cfg)).unwrap()
    });
    // Host A: the sensor source. `send_all` drives one framed
    // `streamout` connection and reports how many records it sent.
    let sent = send_all(segment_addr, &records).unwrap();
    println!("sensor host: streamout sent {sent} records");

    let upstream_end = segment.join().unwrap();
    let (sink_end, streamin_received, received) = sink.join().unwrap();
    let ensembles = received
        .iter()
        .filter(|r| {
            r.kind == RecordKind::OpenScope
                && r.scope_type == acoustic_ensembles::core::scope_type::ENSEMBLE
        })
        .count();
    println!(
        "segment host: upstream ended {upstream_end:?}; sink streamin received {} records ({} ensembles), ended {sink_end:?}",
        streamin_received, ensembles
    );

    // ---- Part 2: fault recovery --------------------------------------
    // The sensor dies mid-clip: streamin synthesizes BadCloseScope so the
    // downstream scope state resynchronizes.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let crashing = records.clone();
    thread::spawn(move || {
        use acoustic_ensembles::river::codec::write_record;
        use std::io::{BufWriter, Write};
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream);
        // Send the clip open + a few records, then vanish without closing.
        for r in crashing.iter().take(5) {
            write_record(&mut w, r).unwrap();
        }
        w.flush().unwrap();
        // Dropped here: simulated crash.
    });
    let mut repaired: Vec<Record> = Vec::new();
    let (end, crash_received) = serve_once(&listener, &mut repaired).unwrap();
    println!(
        "\nfault injection: sensor crashed mid-clip -> streamin received {crash_received} records, ended {end:?}; last record: {}",
        repaired.last().map(|r| r.to_string()).unwrap_or_default()
    );
    acoustic_ensembles::river::scope::validate_scopes(&repaired)
        .expect("repaired stream is scope-balanced");
    println!("repaired stream passes scope validation");

    // ---- Part 3: dynamic segment relocation --------------------------
    let (in_tx, in_rx) = crossbeam::channel::bounded::<Record>(0);
    let (out_tx, out_rx) = unbounded();
    let seg = RelocatablePipeline::spawn(
        move || extraction_segment(cfg),
        in_rx,
        out_tx,
        "field-station-7",
    );
    // Stream two clips; relocate between them "to a better host".
    let clip_records = |seed: u64| {
        let c = synth.clip(SpeciesCode::Rwbl, seed);
        let usable = c.samples.len() - c.samples.len() % cfg.record_len;
        clip_to_records(&c.samples[..usable], cfg.sample_rate, cfg.record_len, &[])
    };
    for r in clip_records(21) {
        in_tx.send(r).unwrap();
    }
    seg.relocate("observatory-core-2");
    for r in clip_records(22) {
        in_tx.send(r).unwrap();
    }
    drop(in_tx);
    let report = seg.join().unwrap();
    let out: Vec<Record> = out_rx.iter().collect();
    acoustic_ensembles::river::scope::validate_scopes(&out).expect("balanced after relocation");
    println!(
        "\nrelocation: {} records processed across {} migration(s); final host '{}'",
        report.records_in,
        report.migrations.len(),
        report.final_host
    );
    for m in &report.migrations {
        println!(
            "  moved {} -> {} after record {}",
            m.from, m.to, m.at_record
        );
    }
    println!("output stream ({} records) is scope-balanced", out.len());
}
