//! Distributed pipeline: one analysis host serving a fleet of sensor
//! clients over real TCP sockets — the Dynamic River composition of the
//! paper's Figure 5 run as a **multi-session service**. Several sensor
//! hosts stream their clips concurrently; the server runs each session
//! through its own clone of the analysis chain, repairs sessions whose
//! sensors crash mid-clip, and reports per-session plus aggregate
//! statistics on graceful shutdown — including full telemetry: each
//! session's wall-clock/idle split and the fleet-wide merged per-stage
//! latency table (DESIGN.md §16).
//!
//! ```text
//! cargo run --release --example distributed_pipeline
//! ```

use acoustic_ensembles::core::ops::clip_to_records;
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::river::codec::write_record;
use acoustic_ensembles::river::net::send_all_with;
use acoustic_ensembles::river::operator::SharedSink;
use acoustic_ensembles::river::prelude::*;
use acoustic_ensembles::river::telemetry::EventKind;
use std::io::{BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;

const SENSORS: u64 = 4;
const MAX_SESSIONS: usize = 3; // fewer slots than sensors: backpressure

fn sensor_clip(cfg: &ExtractorConfig, seed: u64) -> Vec<Record> {
    let synth = ClipSynthesizer::new(SynthConfig {
        clip_seconds: 10.0,
        ..SynthConfig::paper()
    });
    let clip = synth.clip(SpeciesCode::Rwbl, seed);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    clip_to_records(
        &clip.samples[..usable],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    )
}

fn main() {
    let cfg = ExtractorConfig::default();
    let extractor = EnsembleExtractor::new(cfg);

    // ---- The analysis host -------------------------------------------
    // One server, one Figure 5 chain per session, per-session sinks
    // registered in a shared map so we can inspect each stream after.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let outputs: Arc<Mutex<Vec<(u64, String, SharedSink)>>> = Arc::new(Mutex::new(Vec::new()));
    let registry = Arc::clone(&outputs);
    let handle = extractor
        .serve_with_telemetry(listener, MAX_SESSIONS, TelemetryConfig::Full, move |info| {
            let sink = SharedSink::new();
            registry
                .lock()
                .unwrap()
                .push((info.id, info.peer.clone(), sink.clone()));
            Box::new(sink)
        })
        .unwrap();
    let addr = handle.local_addr();
    println!(
        "analysis host: serving the Figure 5 chain on {addr} ({MAX_SESSIONS} concurrent session slots)"
    );

    // ---- The sensor fleet --------------------------------------------
    // Four sensor hosts push their clips concurrently; with only three
    // session slots, the fourth waits in the accept backlog until a
    // slot frees (accept-time backpressure, not half-service). The
    // fleet is mixed-generation: even sensors still speak the v1 wire,
    // odd sensors upgraded to the compact v2/f32 frames — the server
    // detects each sender's format and reports it per session.
    let clients: Vec<_> = (0..SENSORS)
        .map(|s| {
            thread::spawn(move || {
                let cfg = ExtractorConfig::default();
                let records = sensor_clip(&cfg, 11 + s);
                let format = if s % 2 == 0 {
                    WireFormat::V1
                } else {
                    WireFormat::V2(SampleEncoding::F32)
                };
                let sent = send_all_with(addr, &records, format).unwrap();
                println!("sensor {s}: streamout sent {sent} records ({format:?} wire)");
                sent
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // ---- A crashing sensor -------------------------------------------
    // Dies mid-clip without CloseScope or sentinel: only its session is
    // repaired (BadCloseScope through its own chain); the fleet's
    // sessions are untouched.
    let crash_records = sensor_clip(&cfg, 99);
    thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream);
        for r in crash_records.iter().take(5) {
            write_record(&mut w, r).unwrap();
        }
        w.flush().unwrap();
        // Dropped here: simulated crash.
    })
    .join()
    .unwrap();

    // ---- Graceful shutdown -------------------------------------------
    handle.wait_for_completed(SENSORS + 1);
    let report = handle.shutdown().unwrap();
    println!(
        "\nanalysis host: served {} sessions ({} clean, {} repaired)",
        report.sessions.len(),
        report.clean_sessions(),
        report.repaired_sessions()
    );
    for s in &report.sessions {
        println!(
            "  session {} [{}]: {} records in, {} wire bytes (wire v{}), \
             {:.1} ms wall ({:.0}% idle on the socket), ended {:?}{}",
            s.id,
            s.peer,
            s.received,
            s.wire_bytes,
            s.wire_version.map_or_else(|| "?".into(), |v| v.to_string()),
            s.duration.as_secs_f64() * 1e3,
            100.0 * s.idle.as_secs_f64() / s.duration.as_secs_f64().max(1e-9),
            s.end,
            s.error
                .as_deref()
                .map(|e| format!(" ({e})"))
                .unwrap_or_default()
        );
    }
    println!(
        "aggregate: {} records in -> {} records out ({} bytes) across all sessions",
        report.aggregate.source_records, report.aggregate.sink_records, report.aggregate.sink_bytes
    );

    // Fleet-wide telemetry: per-stage latency percentiles merged across
    // every session (the event trace is summarized — the shared ring
    // retains up to 1024 structured events).
    let mut stage_view = report.telemetry.clone();
    let events = std::mem::take(&mut stage_view.events);
    println!(
        "\nmerged stage latency across the fleet:\n{}",
        stage_view.render_table()
    );
    let count_kind = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count();
    println!(
        "event trace: {} events retained ({} session accepts, {} drains, {} errored)",
        events.len(),
        count_kind(EventKind::SessionAccept),
        count_kind(EventKind::SessionDrain),
        count_kind(EventKind::SessionError),
    );

    // Every session's output — including the crashed one — is
    // scope-balanced, and ensembles were extracted per session.
    for (id, peer, sink) in outputs.lock().unwrap().iter() {
        let records = sink.take();
        acoustic_ensembles::river::scope::validate_scopes(&records)
            .expect("session output is scope-balanced");
        let ensembles = records
            .iter()
            .filter(|r| {
                r.kind == RecordKind::OpenScope
                    && r.scope_type == acoustic_ensembles::core::scope_type::ENSEMBLE
            })
            .count();
        let repaired = records.iter().any(|r| r.kind == RecordKind::BadCloseScope);
        println!(
            "session {id} [{peer}]: {} output records, {ensembles} ensembles{}",
            records.len(),
            if repaired {
                " (scope repaired after sensor crash)"
            } else {
                ""
            }
        );
    }
    println!("\nall session outputs pass scope validation");
}
