//! Parallel archive survey: the scope-sharded runtime driving the
//! complete Figure 5 graph over an archive of clips — the Orchive-style
//! workload where throughput comes from data-parallelism across clips,
//! not from the operators themselves.
//!
//! ```text
//! cargo run --release --example parallel_archive [workers [clips]]
//! ```
//!
//! Runs the archive through the single-lane fused executor and through
//! `run_sharded` at the requested worker count, verifies the outputs
//! are byte-identical, and reports both throughputs. It also shows the
//! extractor-level route (`EnsembleExtractor::extract_stream_sharded`)
//! for workloads that want ensembles, not records.

use acoustic_ensembles::core::ops::clips_record_source;
use acoustic_ensembles::core::pipeline::{full_pipeline, full_pipeline_sharded};
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::river::{Record, TelemetryConfig};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let clips: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);

    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::short_test());
    println!("synthesizing {clips} clips...");
    let archive: Vec<Vec<f64>> = (0..clips as u64)
        .map(|seed| {
            let c = synth.clip(
                SpeciesCode::ALL[(seed as usize) % SpeciesCode::ALL.len()],
                seed,
            );
            let usable = c.samples.len() - c.samples.len() % cfg.record_len;
            c.samples[..usable].to_vec()
        })
        .collect();
    let total_samples: usize = archive.iter().map(Vec::len).sum();

    // Single lane: one core drives every clip through the whole chain.
    let mut single: Vec<Record> = Vec::new();
    let t0 = Instant::now();
    full_pipeline(cfg, true)
        .run_streaming(
            clips_record_source(archive.clone(), cfg.sample_rate, cfg.record_len),
            &mut single,
        )
        .unwrap();
    let single_secs = t0.elapsed().as_secs_f64();

    // Sharded: whole clip scopes fan out to worker chains, outputs
    // merge back in archive order. Workers share one telemetry
    // registry, so the snapshot taken after the run is already the
    // archive-wide per-stage latency distribution (DESIGN.md §16).
    let mut sharded: Vec<Record> = Vec::new();
    let t0 = Instant::now();
    let mut runtime = full_pipeline_sharded(cfg, true, workers);
    runtime.set_telemetry(TelemetryConfig::Counters);
    let telemetry = runtime.telemetry();
    let stats = runtime
        .run(
            clips_record_source(archive.clone(), cfg.sample_rate, cfg.record_len),
            &mut sharded,
        )
        .unwrap();
    let sharded_secs = t0.elapsed().as_secs_f64();

    assert_eq!(single, sharded, "sharded output diverged from single lane");
    println!(
        "figure 5 over {clips} clips ({:.1} M samples): single lane {:.2} s, {workers} shards {:.2} s ({:.2}x); \
         outputs byte-identical ({} records), peak per-shard burst {}",
        total_samples as f64 / 1e6,
        single_secs,
        sharded_secs,
        single_secs / sharded_secs,
        sharded.len(),
        stats.max_peak_burst(),
    );
    println!(
        "\nper-stage latency, merged across {workers} shards:\n{}",
        telemetry.snapshot().render_table()
    );

    // The extractor-level route: clip-parallel ensemble extraction.
    let ex = EnsembleExtractor::new(cfg);
    let t0 = Instant::now();
    let per_clip = ex.extract_stream_sharded(&archive, workers);
    let extract_secs = t0.elapsed().as_secs_f64();
    let ensembles: usize = per_clip.iter().map(Vec::len).sum();
    println!(
        "extract_stream_sharded: {ensembles} ensembles from {clips} clips in {:.2} s ({:.1} M samples/s)",
        extract_secs,
        total_samples as f64 / extract_secs / 1e6,
    );
}
