//! Quickstart: synthesize a field clip, stream it through ensemble
//! extraction chunk by chunk, featurize what was found, and run the
//! full Figure 5 record pipeline with per-stage statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acoustic_ensembles::core::ops::clip_record_source;
use acoustic_ensembles::core::pipeline::{featurize_ensemble, full_pipeline};
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::river::prelude::*;

fn main() {
    // A 30-second "field recording": ambience plus a few Northern
    // cardinal song bouts.
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, 42);
    println!(
        "clip: {:.0} s at {:.1} kHz, {} song bout(s) hidden in the noise",
        clip.duration(),
        clip.sample_rate / 1e3,
        clip.events.len()
    );

    // Extract ensembles with the paper's parameters (SAX window 100,
    // alphabet 8, moving average 2250, adaptive 3-sigma trigger) — fed
    // record-sized chunks, as a sensor stream would deliver them. Each
    // ensemble pops out the moment its trigger releases.
    let config = ExtractorConfig::default();
    let extractor = EnsembleExtractor::new(config);
    let mut stream = extractor.extract_stream();
    let mut ensembles = Vec::new();
    for chunk in clip.samples.chunks(config.record_len) {
        stream.push_chunk(chunk, &mut ensembles);
    }
    ensembles.extend(stream.finish());

    println!(
        "\nextracted {} ensemble(s) while streaming:",
        ensembles.len()
    );
    let mut kept = 0usize;
    for (i, e) in ensembles.iter().enumerate() {
        kept += e.len();
        let truth = clip.label_for_range(e.start, e.end).map_or_else(
            || "no bird (noise event)".to_string(),
            |s| format!("{} ({})", s.code(), s.common_name()),
        );
        let patterns = featurize_ensemble(&e.samples, &config, true);
        println!(
            "  #{:<2} {:>6.2}s..{:<6.2}s  {:>6} samples  {:>3} patterns  ground truth: {}",
            i + 1,
            e.start as f64 / clip.sample_rate,
            e.end as f64 / clip.sample_rate,
            e.len(),
            patterns.len(),
            truth
        );
    }
    println!(
        "\ndata reduction: {:.1}% of the clip was discarded as non-event",
        100.0 * (1.0 - kept as f64 / clip.samples.len() as f64)
    );

    // The same analysis as a record pipeline: the complete Figure 5
    // operator graph, run by the fused streaming executor. The source
    // chunks samples lazily, each record flows depth-first through all
    // ten operators, and the driver reports per-stage traffic.
    let mut pipeline = full_pipeline(config, true);
    let mut sink = CountingSink::default();
    let stats = pipeline
        .run_streaming(
            clip_record_source(
                clip.samples.iter().copied(),
                config.sample_rate,
                config.record_len,
                &[],
            ),
            &mut sink,
        )
        .expect("pipeline run");

    println!(
        "\nFigure 5 pipeline (streaming executor): {} source records -> {} sink records",
        stats.source_records, stats.sink_records
    );
    println!(
        "  {:<12} {:>10} {:>12} {:>10} {:>12} {:>6}",
        "stage", "rec in", "bytes in", "rec out", "bytes out", "burst"
    );
    for s in &stats.stages {
        println!(
            "  {:<12} {:>10} {:>12} {:>10} {:>12} {:>6}",
            s.name, s.records_in, s.bytes_in, s.records_out, s.bytes_out, s.peak_burst
        );
    }
    println!(
        "peak burst {} record(s): buffering is operator state, not stream length",
        stats.max_peak_burst()
    );
}
