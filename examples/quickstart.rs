//! Quickstart: synthesize a field clip, extract ensembles, featurize
//! them, and print what was found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acoustic_ensembles::core::pipeline::featurize_ensemble;
use acoustic_ensembles::core::prelude::*;

fn main() {
    // A 30-second "field recording": ambience plus a few Northern
    // cardinal song bouts.
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, 42);
    println!(
        "clip: {:.0} s at {:.1} kHz, {} song bout(s) hidden in the noise",
        clip.duration(),
        clip.sample_rate / 1e3,
        clip.events.len()
    );

    // Extract ensembles with the paper's parameters (SAX window 100,
    // alphabet 8, moving average 2250, adaptive 3-sigma trigger).
    let config = ExtractorConfig::default();
    let extractor = EnsembleExtractor::new(config);
    let trace = extractor.extract_with_trace(&clip.samples);

    println!("\nextracted {} ensemble(s):", trace.ensembles.len());
    let mut kept = 0usize;
    for (i, e) in trace.ensembles.iter().enumerate() {
        kept += e.len();
        let truth = clip
            .label_for_range(e.start, e.end)
            .map(|s| format!("{} ({})", s.code(), s.common_name()))
            .unwrap_or_else(|| "no bird (noise event)".to_string());
        let patterns = featurize_ensemble(&e.samples, &config, true);
        println!(
            "  #{:<2} {:>6.2}s..{:<6.2}s  {:>6} samples  {:>3} patterns  ground truth: {}",
            i + 1,
            e.start as f64 / clip.sample_rate,
            e.end as f64 / clip.sample_rate,
            e.len(),
            patterns.len(),
            truth
        );
    }
    println!(
        "\ndata reduction: {:.1}% of the clip was discarded as non-event",
        100.0 * (1.0 - kept as f64 / clip.samples.len() as f64)
    );
}
