//! Species survey: build a labeled corpus, train MESO, then identify
//! the species vocalizing in fresh, unseen clips — the paper's
//! "automated species surveys using acoustics" (§6).
//!
//! ```text
//! cargo run --release --example species_survey
//! ```

use acoustic_ensembles::core::classify::SpeciesClassifier;
use acoustic_ensembles::core::prelude::*;

fn main() {
    // 1. Build a training corpus (synthetic stand-in for the validated
    //    field recordings).
    let corpus_cfg = CorpusConfig {
        clips_per_species: 4,
        ..CorpusConfig::paper_scale()
    };
    println!(
        "building training corpus ({} clips/species)...",
        corpus_cfg.clips_per_species
    );
    let corpus = Corpus::build(corpus_cfg);
    let bundle = DatasetBundle::build(&corpus);
    println!(
        "  {} ensembles -> {} PAA patterns ({} rejected as non-bird)",
        corpus.ensembles.len(),
        bundle.paa_ensemble.len(),
        corpus.rejected
    );

    // 2. Train the perceptual memory.
    let classifier = SpeciesClassifier::train(&bundle.paa_ensemble, corpus_cfg);
    println!(
        "  MESO trained: {} sensitivity spheres",
        classifier.sphere_count()
    );

    // 3. Survey fresh clips (seeds never seen in training).
    println!("\nsurveying fresh clips:");
    let synth = ClipSynthesizer::new(corpus_cfg.synth);
    let extractor = EnsembleExtractor::new(corpus_cfg.extractor);
    let mut correct = 0usize;
    let mut total = 0usize;
    for &species in &SpeciesCode::ALL {
        let clip = synth.clip(species, 900_000 + species.label() as u64);
        let ensembles = extractor.extract(&clip.samples);
        let mut heard: Vec<String> = Vec::new();
        for e in &ensembles {
            // Field deployments have no ground truth; here we use it only
            // to score the survey at the end.
            if let Some(predicted) = classifier.recognize(&e.samples) {
                if clip.label_for_range(e.start, e.end).is_some() {
                    total += 1;
                    if predicted == species {
                        correct += 1;
                    }
                }
                heard.push(predicted.code().to_string());
            }
        }
        println!(
            "  actual {:<4} -> heard [{}]",
            species.code(),
            heard.join(", ")
        );
    }
    if total > 0 {
        println!(
            "\nsurvey accuracy on bird ensembles: {correct}/{total} ({:.0}%)",
            100.0 * correct as f64 / total as f64
        );
    }
}
