//! # acoustic-ensembles
//!
//! Facade crate for the reproduction of Kasten, McKinley & Gage,
//! *Automated Ensemble Extraction and Analysis of Acoustic Data Streams*
//! (DEPSA / ICDCS 2007). Re-exports the workspace crates under one roof:
//!
//! - [`dsp`] — signal processing substrate (FFT, windows, WAV, spectrograms)
//! - [`sax`] — PAA / SAX / bitmap anomaly substrate
//! - [`meso`] — the MESO perceptual-memory classifier
//! - [`river`] — the Dynamic River distributed pipeline
//! - [`core`] — ensemble extraction, birdsong synthesis, datasets
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`:
//!
//! ```
//! use acoustic_ensembles::core::prelude::*;
//!
//! let synth = ClipSynthesizer::new(SynthConfig::paper());
//! let clip = synth.clip(SpeciesCode::Noca, 42);
//! let extractor = EnsembleExtractor::new(ExtractorConfig::default());
//! let ensembles = extractor.extract(&clip.samples);
//! assert!(!ensembles.is_empty());
//! println!("{} ensembles", ensembles.len());
//! ```

pub use dynamic_river as river;
pub use ensemble_core as core;
pub use meso;
pub use river_dsp as dsp;
pub use river_sax as sax;
