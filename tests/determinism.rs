//! Cross-crate determinism and invariant checks.

use acoustic_ensembles::core::pipeline::featurize_ensemble;
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::river::scope::validate_scopes;
use acoustic_ensembles::river::Record;

#[test]
fn same_seed_same_everything() {
    let cfg = CorpusConfig {
        clips_per_species: 1,
        seed: 99,
        synth: SynthConfig {
            clip_seconds: 8.0,
            ..SynthConfig::paper()
        },
        extractor: ExtractorConfig::paper(),
    };
    let a = Corpus::build(cfg);
    let b = Corpus::build(cfg);
    assert_eq!(a.ensembles.len(), b.ensembles.len());
    for (x, y) in a.ensembles.iter().zip(&b.ensembles) {
        assert_eq!(x.species, y.species);
        assert_eq!(x.ensemble.samples, y.ensemble.samples);
    }
    let da = DatasetBundle::build(&a);
    let db = DatasetBundle::build(&b);
    assert_eq!(da.ensemble.len(), db.ensemble.len());
    for i in 0..da.ensemble.len() {
        assert_eq!(da.ensemble.features(i), db.ensemble.features(i));
    }
}

#[test]
fn different_seeds_differ() {
    let base = CorpusConfig {
        clips_per_species: 1,
        seed: 1,
        synth: SynthConfig {
            clip_seconds: 8.0,
            ..SynthConfig::paper()
        },
        extractor: ExtractorConfig::paper(),
    };
    let a = Corpus::build(base);
    let b = Corpus::build(CorpusConfig { seed: 2, ..base });
    // Ensembles must not be byte-identical between different corpora.
    let identical = a.ensembles.len() == b.ensembles.len()
        && a.ensembles
            .iter()
            .zip(&b.ensembles)
            .all(|(x, y)| x.ensemble.samples == y.ensemble.samples);
    assert!(!identical);
}

#[test]
fn record_and_direct_paths_agree_on_real_ensembles() {
    // Take real extracted ensembles and verify the operator pipeline and
    // the direct featurizer agree (they are asserted equal at unit level
    // on synthetic slices; this checks real cutter output).
    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig {
        clip_seconds: 12.0,
        ..SynthConfig::paper()
    });
    let clip = synth.clip(SpeciesCode::Tuti, 3);
    let extractor = EnsembleExtractor::new(cfg);
    let ensembles = extractor.extract(&clip.samples);
    for e in ensembles.iter().take(3) {
        for with_paa in [false, true] {
            let patterns = featurize_ensemble(&e.samples, &cfg, with_paa);
            let expect_dim = if with_paa { 105 } else { 1_050 };
            for p in &patterns {
                assert_eq!(p.len(), expect_dim);
                assert!(p.iter().all(|x| x.is_finite() && *x >= 0.0));
            }
        }
    }
}

#[test]
fn full_pipeline_output_is_always_scope_balanced() {
    use acoustic_ensembles::core::ops::clip_to_records;
    use acoustic_ensembles::core::pipeline::full_pipeline;

    let cfg = ExtractorConfig::paper();
    let synth = ClipSynthesizer::new(SynthConfig {
        clip_seconds: 10.0,
        ..SynthConfig::paper()
    });
    for seed in [1u64, 2, 3] {
        let clip = synth.clip(SpeciesCode::Hofi, seed);
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        let records: Vec<Record> = clip_to_records(
            &clip.samples[..usable],
            cfg.sample_rate,
            cfg.record_len,
            &[],
        );
        let out = full_pipeline(cfg, true).run(records).unwrap();
        validate_scopes(&out).unwrap();
    }
}

#[test]
fn config_geometry_is_self_consistent() {
    let cfg = ExtractorConfig::paper();
    cfg.validate();
    // The published feature arithmetic (paper §4).
    assert_eq!(cfg.pattern_features(), 1_050);
    assert_eq!(cfg.paa_pattern_features(), 105);
    assert!((cfg.pattern_seconds() - 0.125).abs() < 1e-12);
    assert_eq!(cfg.bins_per_record(), 350);
}
