//! Integration tests for the distributed pipeline: TCP composition,
//! fault recovery, threaded execution and segment relocation, driven by
//! the acoustic operators.

use acoustic_ensembles::core::ops::clip_to_records;
use acoustic_ensembles::core::pipeline::{extraction_segment, full_pipeline};
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::core::{scope_type, subtype};
use acoustic_ensembles::river::fault::{DropCloses, TruncateAfter};
use acoustic_ensembles::river::net::{send_all, serve_once, StreamEnd};
use acoustic_ensembles::river::ops::ScopeRepair;
use acoustic_ensembles::river::prelude::*;
use acoustic_ensembles::river::scope::validate_scopes;
use acoustic_ensembles::river::segment::{run_network_segment, RelocatablePipeline};
use crossbeam::channel::{bounded, unbounded};
use std::net::TcpListener;
use std::thread;

fn clip_records(cfg: &ExtractorConfig, seed: u64) -> Vec<Record> {
    let synth = ClipSynthesizer::new(SynthConfig {
        clip_seconds: 10.0,
        ..SynthConfig::paper()
    });
    let clip = synth.clip(SpeciesCode::Blja, seed);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    clip_to_records(
        &clip.samples[..usable],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    )
}

#[test]
fn acoustic_pipeline_across_tcp_hosts() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 1);

    let seg_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let seg_addr = seg_listener.local_addr().unwrap();
    let sink_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let sink_addr = sink_listener.local_addr().unwrap();

    let sink = thread::spawn(move || {
        let mut out: Vec<Record> = Vec::new();
        let (end, received) = serve_once(&sink_listener, &mut out).unwrap();
        assert_eq!(received as usize, out.len());
        (end, out)
    });
    let segment = thread::spawn(move || {
        run_network_segment(&seg_listener, sink_addr, extraction_segment(cfg)).unwrap()
    });
    let sent = send_all(seg_addr, &records).unwrap();
    assert_eq!(sent as usize, records.len());

    assert_eq!(segment.join().unwrap(), StreamEnd::Clean);
    let (end, received) = sink.join().unwrap();
    assert_eq!(end, StreamEnd::Clean);
    validate_scopes(&received).unwrap();
    // The clip scope survived the hop; the data inside is ensemble audio.
    assert!(received
        .iter()
        .any(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::CLIP));
    for r in received.iter().filter(|r| r.kind == RecordKind::Data) {
        assert_eq!(r.subtype, subtype::AUDIO);
    }
}

#[test]
fn crash_mid_clip_yields_balanced_stream_downstream() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 2);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    thread::spawn(move || {
        use acoustic_ensembles::river::codec::write_record;
        use std::io::{BufWriter, Write};
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream);
        for r in records.iter().take(20) {
            write_record(&mut w, r).unwrap();
        }
        w.flush().unwrap();
        // Crash: no CloseScope, no EOS sentinel.
    });

    let mut received: Vec<Record> = Vec::new();
    let (end, streamin_received) = serve_once(&listener, &mut received).unwrap();
    assert_eq!(end, StreamEnd::Unclean { repaired_scopes: 1 });
    assert_eq!(streamin_received, 20);
    validate_scopes(&received).unwrap();
    assert_eq!(
        received.last().unwrap().kind,
        RecordKind::BadCloseScope,
        "stream must end with the synthesized BadCloseScope"
    );
}

#[test]
fn threaded_full_pipeline_matches_sync() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 3);
    let sync_out = full_pipeline(cfg, true).run(records.clone()).unwrap();
    let threaded_out = full_pipeline(cfg, true).run_threaded(records).unwrap();
    assert_eq!(sync_out, threaded_out);
    validate_scopes(&sync_out).unwrap();
}

#[test]
fn dropped_closes_are_repaired_before_analysis() {
    let cfg = ExtractorConfig::default();
    let mut records = clip_records(&cfg, 4);
    records.extend(clip_records(&cfg, 5));

    let mut p = Pipeline::new();
    p.add(DropCloses::every(1)); // drop every clip CloseScope
    p.add(ScopeRepair::new());
    let out = p.run(records).unwrap();
    validate_scopes(&out).unwrap();
    let bad = out
        .iter()
        .filter(|r| r.kind == RecordKind::BadCloseScope)
        .count();
    assert_eq!(bad, 2, "one repair per dropped clip close");
}

#[test]
fn truncated_stream_keeps_extraction_alive() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 6);
    let n = records.len();

    let mut p = Pipeline::new();
    p.add(TruncateAfter::new((n / 2) as u64));
    p.add(ScopeRepair::new());
    // Extraction must cope with the repaired (BadCloseScope) clip.
    p.add(acoustic_ensembles::core::ops::SaxAnomaly::new(cfg));
    p.add(acoustic_ensembles::core::ops::TriggerOp::new(cfg));
    p.add(acoustic_ensembles::core::ops::Cutter::new(cfg));
    let out = p.run(records).unwrap();
    validate_scopes(&out).unwrap();
}

#[test]
fn relocation_during_acoustic_stream() {
    let cfg = ExtractorConfig::default();
    let (in_tx, in_rx) = bounded::<Record>(0);
    let (out_tx, out_rx) = unbounded();
    let seg = RelocatablePipeline::spawn(move || extraction_segment(cfg), in_rx, out_tx, "a");

    let first = clip_records(&cfg, 7);
    let second = clip_records(&cfg, 8);
    let expected_total = first.len() + second.len();
    for r in first {
        in_tx.send(r).unwrap();
    }
    seg.relocate("b");
    for r in second {
        in_tx.send(r).unwrap();
    }
    drop(in_tx);

    let report = seg.join().unwrap();
    assert_eq!(report.records_in as usize, expected_total);
    assert_eq!(report.migrations.len(), 1);
    assert_eq!(report.final_host, "b");
    let out: Vec<Record> = out_rx.iter().collect();
    validate_scopes(&out).unwrap();
}
