//! Integration tests for the distributed pipeline: TCP composition,
//! fault recovery, threaded execution and segment relocation, driven by
//! the acoustic operators.

use acoustic_ensembles::core::ops::clip_to_records;
use acoustic_ensembles::core::pipeline::{extraction_segment, full_pipeline};
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::core::{scope_type, subtype};
use acoustic_ensembles::river::fault::{DropCloses, TruncateAfter};
use acoustic_ensembles::river::net::{send_all, serve_once, StreamEnd, StreamOut};
use acoustic_ensembles::river::operator::{NullSink, Operator, SharedSink};
use acoustic_ensembles::river::ops::ScopeRepair;
use acoustic_ensembles::river::prelude::*;
use acoustic_ensembles::river::scope::validate_scopes;
use acoustic_ensembles::river::segment::{run_network_segment, RelocatablePipeline};
use acoustic_ensembles::river::serve::PipelineServer;
use crossbeam::channel::{bounded, unbounded};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

fn clip_records(cfg: &ExtractorConfig, seed: u64) -> Vec<Record> {
    let synth = ClipSynthesizer::new(SynthConfig {
        clip_seconds: 10.0,
        ..SynthConfig::paper()
    });
    let clip = synth.clip(SpeciesCode::Blja, seed);
    let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
    clip_to_records(
        &clip.samples[..usable],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    )
}

/// The acceptance run for the multi-session service layer: four
/// concurrent sensor clients push distinct clips through one
/// [`PipelineServer`] running the complete Figure 5 chain, a fifth
/// client crashes mid-clip, and the server is then shut down
/// gracefully. Every surviving session's output must be
/// **byte-identical** to running that client's records through the
/// single-lane streaming driver, and the crash must surface as a
/// `BadCloseScope` repair in its own session only.
#[test]
fn concurrent_sessions_through_one_server_match_single_lane() {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig {
        clip_seconds: 6.0,
        ..SynthConfig::paper()
    });
    let clip_records = |seed: u64| {
        let clip = synth.clip(SpeciesCode::Noca, seed);
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        clip_to_records(
            &clip.samples[..usable],
            cfg.sample_rate,
            cfg.record_len,
            &[],
        )
    };
    let clips: Vec<Vec<Record>> = (20..24u64).map(clip_records).collect();
    // Single-lane reference: what the fused streaming driver produces
    // for each client's records on a fresh Figure 5 chain.
    let expected: Vec<Vec<Record>> = clips
        .iter()
        .map(|records| {
            let mut out = Vec::new();
            full_pipeline(cfg, true)
                .run_streaming(records.clone().into_iter(), &mut out)
                .unwrap();
            out
        })
        .collect();

    // One server, session outputs registered by peer address.
    let outputs: Arc<Mutex<HashMap<String, SharedSink>>> = Arc::new(Mutex::new(HashMap::new()));
    let registry = Arc::clone(&outputs);
    let mut server = PipelineServer::from_factory(move |_session| full_pipeline(cfg, true));
    server.set_max_sessions(4);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = server
        .start(listener, move |info| {
            let sink = SharedSink::new();
            registry
                .lock()
                .unwrap()
                .insert(info.peer.clone(), sink.clone());
            Box::new(sink)
        })
        .unwrap();
    let addr = handle.local_addr();

    // Four clients connect first, then all send concurrently.
    let barrier = Arc::new(Barrier::new(4));
    let clients: Vec<_> = clips
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, records)| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let peer = stream.local_addr().unwrap().to_string();
                let mut out = StreamOut::new(stream);
                barrier.wait();
                let mut devnull = NullSink;
                for r in &records {
                    out.on_record(r.clone(), &mut devnull).unwrap();
                }
                out.on_eos(&mut devnull).unwrap();
                (i, peer)
            })
        })
        .collect();
    let peers: Vec<(usize, String)> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    handle.wait_for_completed(4);

    // A fifth client dies mid-clip: open scope, a few records, gone.
    let crashing = clip_records(42);
    let crash_peer = thread::spawn(move || {
        use acoustic_ensembles::river::codec::write_record;
        use std::io::{BufWriter, Write};
        let stream = TcpStream::connect(addr).unwrap();
        let peer = stream.local_addr().unwrap().to_string();
        let mut w = BufWriter::new(stream);
        for r in crashing.iter().take(8) {
            write_record(&mut w, r).unwrap();
        }
        w.flush().unwrap();
        peer
        // Dropped: no CloseScope, no sentinel.
    })
    .join()
    .unwrap();
    handle.wait_for_completed(5);

    let report = handle.shutdown().unwrap();
    assert_eq!(report.sessions.len(), 5);
    assert_eq!(report.clean_sessions(), 4);
    assert_eq!(report.repaired_sessions(), 1);

    let outputs = outputs.lock().unwrap();
    // Each healthy session's output is byte-identical to its client's
    // single-lane reference.
    for (i, peer) in &peers {
        let got = outputs.get(peer).expect("session output registered").take();
        assert_eq!(
            got, expected[*i],
            "session for client {i} diverged from the single-lane run"
        );
    }
    // The crashed session — and only it — was scope-repaired.
    let crashed = report
        .sessions
        .iter()
        .find(|s| s.peer == crash_peer)
        .expect("crashed session reported");
    assert_eq!(crashed.end, StreamEnd::Unclean { repaired_scopes: 1 });
    assert_eq!(crashed.received, 8);
    let crashed_out = outputs.get(&crash_peer).unwrap().take();
    validate_scopes(&crashed_out).unwrap();
    assert_eq!(crashed_out.last().unwrap().kind, RecordKind::BadCloseScope);
    for s in &report.sessions {
        if s.peer != crash_peer {
            assert_eq!(s.end, StreamEnd::Clean, "session {} disturbed", s.id);
        }
    }
    // Aggregate statistics fold every session's counters.
    let total_received: u64 = report.sessions.iter().map(|s| s.received).sum();
    assert_eq!(report.aggregate.source_records, total_received);
    assert_eq!(
        total_received as usize,
        clips.iter().map(Vec::len).sum::<usize>() + 8
    );
}

/// Cross-version interop matrix (ISSUE satellite 3): v1 and v2 clients
/// drive the same Figure 5 [`PipelineServer`] concurrently. The server
/// auto-detects the wire version per frame, so "v1 client → v2 server"
/// and "v2 client → v1-era server" are both exercised by mixing
/// formats across sessions of one server. Every session's output must
/// be byte-identical to the single-lane streaming driver, and each
/// session must report the wire version its sender chose.
#[test]
fn mixed_wire_versions_interoperate_through_one_server() {
    use acoustic_ensembles::river::codec::{SampleEncoding, WireFormat};
    use acoustic_ensembles::river::net::send_all_with;

    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig {
        clip_seconds: 4.0,
        ..SynthConfig::paper()
    });
    let clip_records = |seed: u64| {
        let clip = synth.clip(SpeciesCode::Bcch, seed);
        let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
        clip_to_records(
            &clip.samples[..usable],
            cfg.sample_rate,
            cfg.record_len,
            &[],
        )
    };
    // Lossless formats only: byte-identity is the acceptance bar.
    let lanes: Vec<(WireFormat, Vec<Record>)> = vec![
        (WireFormat::V1, clip_records(31)),
        (WireFormat::V2(SampleEncoding::F64), clip_records(32)),
        (WireFormat::V1, clip_records(33)),
        (WireFormat::V2(SampleEncoding::F64), clip_records(34)),
    ];
    let expected: Vec<Vec<Record>> = lanes
        .iter()
        .map(|(_, records)| {
            let mut out = Vec::new();
            full_pipeline(cfg, true)
                .run_streaming(records.clone().into_iter(), &mut out)
                .unwrap();
            out
        })
        .collect();

    let outputs: Arc<Mutex<HashMap<String, SharedSink>>> = Arc::new(Mutex::new(HashMap::new()));
    let registry = Arc::clone(&outputs);
    let mut server = PipelineServer::from_factory(move |_session| full_pipeline(cfg, true));
    server.set_max_sessions(4);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = server
        .start(listener, move |info| {
            let sink = SharedSink::new();
            registry
                .lock()
                .unwrap()
                .insert(info.peer.clone(), sink.clone());
            Box::new(sink)
        })
        .unwrap();
    let addr = handle.local_addr();

    let clients: Vec<_> = lanes
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, (format, records))| {
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let peer = stream.local_addr().unwrap().to_string();
                let mut out = StreamOut::new(stream).with_format(format);
                let mut devnull = NullSink;
                for r in &records {
                    out.on_record(r.clone(), &mut devnull).unwrap();
                }
                out.on_eos(&mut devnull).unwrap();
                (i, peer)
            })
        })
        .collect();
    let peers: Vec<(usize, String)> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    handle.wait_for_completed(4);
    let report = handle.shutdown().unwrap();
    assert_eq!(report.clean_sessions(), 4);

    let outputs = outputs.lock().unwrap();
    for (i, peer) in &peers {
        let got = outputs.get(peer).expect("session output registered").take();
        assert_eq!(
            got, expected[*i],
            "wire format {:?} diverged from the single-lane run",
            lanes[*i].0
        );
        let session = report
            .sessions
            .iter()
            .find(|s| s.peer == *peer)
            .expect("session reported");
        assert_eq!(
            session.wire_version,
            Some(lanes[*i].0.version()),
            "session must report its sender's negotiated version"
        );
    }

    // The compact path also holds end-to-end for a whole clip:
    // send_all_with over v2/f32 halves the wire (typed satellite check
    // lives in the bench; here we just require the session to work and
    // report v2).
    let f32_records = clip_records(35);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut server = PipelineServer::from_factory(move |_session| full_pipeline(cfg, true));
    server.set_max_sessions(1);
    let sink = SharedSink::new();
    let sink_out = sink.clone();
    let handle = server
        .start(listener, move |_info| Box::new(sink_out.clone()))
        .unwrap();
    send_all_with(
        handle.local_addr(),
        &f32_records,
        WireFormat::V2(SampleEncoding::F32),
    )
    .unwrap();
    handle.wait_for_completed(1);
    let report = handle.shutdown().unwrap();
    assert_eq!(report.sessions[0].wire_version, Some(2));
    assert_eq!(report.sessions[0].end, StreamEnd::Clean);
    let out = sink.take();
    validate_scopes(&out).unwrap();
    assert!(
        out.iter()
            .any(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN),
        "f32-quantized clip still yields pattern output"
    );
}

#[test]
fn extractor_serve_runs_figure5_per_session() {
    // The core-facade route: EnsembleExtractor::serve with two clients,
    // asserting pattern output arrives per session.
    let cfg = ExtractorConfig::default();
    let ex = EnsembleExtractor::new(cfg);
    let outputs: Arc<Mutex<Vec<SharedSink>>> = Arc::new(Mutex::new(Vec::new()));
    let registry = Arc::clone(&outputs);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = ex
        .serve(listener, 2, move |_info| {
            let sink = SharedSink::new();
            registry.lock().unwrap().push(sink.clone());
            Box::new(sink)
        })
        .unwrap();
    let addr = handle.local_addr();
    let clients: Vec<_> = (7..9u64)
        .map(|seed| {
            thread::spawn(move || {
                let cfg = ExtractorConfig::default();
                let synth = ClipSynthesizer::new(SynthConfig::paper());
                let clip = synth.clip(SpeciesCode::Rwbl, seed);
                let usable = clip.samples.len() - clip.samples.len() % cfg.record_len;
                let records = clip_to_records(
                    &clip.samples[..usable],
                    cfg.sample_rate,
                    cfg.record_len,
                    &[],
                );
                send_all(addr, &records).unwrap()
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    handle.wait_for_completed(2);
    let report = handle.shutdown().unwrap();
    assert_eq!(report.sessions.len(), 2);
    assert_eq!(report.clean_sessions(), 2);
    for sink in outputs.lock().unwrap().iter() {
        let records = sink.take();
        validate_scopes(&records).unwrap();
        // Song clips produce pattern vectors through the full chain.
        assert!(records
            .iter()
            .any(|r| r.kind == RecordKind::Data && r.subtype == subtype::PATTERN));
    }
}

#[test]
fn acoustic_pipeline_across_tcp_hosts() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 1);

    let seg_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let seg_addr = seg_listener.local_addr().unwrap();
    let sink_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let sink_addr = sink_listener.local_addr().unwrap();

    let sink = thread::spawn(move || {
        let mut out: Vec<Record> = Vec::new();
        let (end, received) = serve_once(&sink_listener, &mut out).unwrap();
        assert_eq!(received as usize, out.len());
        (end, out)
    });
    let segment = thread::spawn(move || {
        run_network_segment(&seg_listener, sink_addr, extraction_segment(cfg)).unwrap()
    });
    let sent = send_all(seg_addr, &records).unwrap();
    assert_eq!(sent as usize, records.len());

    assert_eq!(segment.join().unwrap(), StreamEnd::Clean);
    let (end, received) = sink.join().unwrap();
    assert_eq!(end, StreamEnd::Clean);
    validate_scopes(&received).unwrap();
    // The clip scope survived the hop; the data inside is ensemble audio.
    assert!(received
        .iter()
        .any(|r| r.kind == RecordKind::OpenScope && r.scope_type == scope_type::CLIP));
    for r in received.iter().filter(|r| r.kind == RecordKind::Data) {
        assert_eq!(r.subtype, subtype::AUDIO);
    }
}

#[test]
fn crash_mid_clip_yields_balanced_stream_downstream() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 2);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    thread::spawn(move || {
        use acoustic_ensembles::river::codec::write_record;
        use std::io::{BufWriter, Write};
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream);
        for r in records.iter().take(20) {
            write_record(&mut w, r).unwrap();
        }
        w.flush().unwrap();
        // Crash: no CloseScope, no EOS sentinel.
    });

    let mut received: Vec<Record> = Vec::new();
    let (end, streamin_received) = serve_once(&listener, &mut received).unwrap();
    assert_eq!(end, StreamEnd::Unclean { repaired_scopes: 1 });
    assert_eq!(streamin_received, 20);
    validate_scopes(&received).unwrap();
    assert_eq!(
        received.last().unwrap().kind,
        RecordKind::BadCloseScope,
        "stream must end with the synthesized BadCloseScope"
    );
}

#[test]
fn threaded_full_pipeline_matches_sync() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 3);
    let sync_out = full_pipeline(cfg, true).run(records.clone()).unwrap();
    let threaded_out = full_pipeline(cfg, true).run_threaded(records).unwrap();
    assert_eq!(sync_out, threaded_out);
    validate_scopes(&sync_out).unwrap();
}

#[test]
fn dropped_closes_are_repaired_before_analysis() {
    let cfg = ExtractorConfig::default();
    let mut records = clip_records(&cfg, 4);
    records.extend(clip_records(&cfg, 5));

    let mut p = Pipeline::new();
    p.add(DropCloses::every(1)); // drop every clip CloseScope
    p.add(ScopeRepair::new());
    let out = p.run(records).unwrap();
    validate_scopes(&out).unwrap();
    let bad = out
        .iter()
        .filter(|r| r.kind == RecordKind::BadCloseScope)
        .count();
    assert_eq!(bad, 2, "one repair per dropped clip close");
}

#[test]
fn truncated_stream_keeps_extraction_alive() {
    let cfg = ExtractorConfig::default();
    let records = clip_records(&cfg, 6);
    let n = records.len();

    let mut p = Pipeline::new();
    p.add(TruncateAfter::new((n / 2) as u64));
    p.add(ScopeRepair::new());
    // Extraction must cope with the repaired (BadCloseScope) clip.
    p.add(acoustic_ensembles::core::ops::SaxAnomaly::new(cfg));
    p.add(acoustic_ensembles::core::ops::TriggerOp::new(cfg));
    p.add(acoustic_ensembles::core::ops::Cutter::new(cfg));
    let out = p.run(records).unwrap();
    validate_scopes(&out).unwrap();
}

#[test]
fn relocation_during_acoustic_stream() {
    let cfg = ExtractorConfig::default();
    let (in_tx, in_rx) = bounded::<Record>(0);
    let (out_tx, out_rx) = unbounded();
    let seg = RelocatablePipeline::spawn(move || extraction_segment(cfg), in_rx, out_tx, "a");

    let first = clip_records(&cfg, 7);
    let second = clip_records(&cfg, 8);
    let expected_total = first.len() + second.len();
    for r in first {
        in_tx.send(r).unwrap();
    }
    seg.relocate("b");
    for r in second {
        in_tx.send(r).unwrap();
    }
    drop(in_tx);

    let report = seg.join().unwrap();
    assert_eq!(report.records_in as usize, expected_total);
    assert_eq!(report.migrations.len(), 1);
    assert_eq!(report.final_host, "b");
    let out: Vec<Record> = out_rx.iter().collect();
    validate_scopes(&out).unwrap();
}
