//! End-to-end integration: synthesis → extraction → featurization →
//! MESO classification, across crate boundaries.

use acoustic_ensembles::core::classify::{paper_meso_config, SpeciesClassifier};
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::meso::crossval::{leave_one_out, resubstitution, CrossValConfig, LooMode};

fn corpus_config() -> CorpusConfig {
    CorpusConfig {
        clips_per_species: 3,
        seed: 404,
        synth: SynthConfig {
            clip_seconds: 15.0,
            ..SynthConfig::paper()
        },
        extractor: ExtractorConfig::paper(),
    }
}

#[test]
fn corpus_to_classification_round_trip() {
    let cfg = corpus_config();
    let corpus = Corpus::build(cfg);
    assert!(
        corpus.ensembles.len() >= 20,
        "too few ensembles: {}",
        corpus.ensembles.len()
    );

    let bundle = DatasetBundle::build(&corpus);
    assert_eq!(bundle.paa_ensemble.dim(), 105);

    let cv = CrossValConfig {
        iterations: 1,
        seed: 1,
        loo_mode: LooMode::Removal,
        meso: paper_meso_config(),
    };
    let loo = leave_one_out(&bundle.paa_ensemble, &cv);
    let resub = resubstitution(&bundle.paa_ensemble, &cv);
    // Ten classes: chance is 10%. Even this tiny corpus must do far
    // better, and resubstitution must dominate leave-one-out.
    assert!(
        loo.mean_accuracy() > 0.4,
        "LOO accuracy {:.2}",
        loo.mean_accuracy()
    );
    assert!(resub.mean_accuracy() >= loo.mean_accuracy() - 0.02);
}

#[test]
fn paper_shape_holds_ensembles_beat_patterns() {
    let corpus = Corpus::build(corpus_config());
    let bundle = DatasetBundle::build(&corpus);
    let cv = CrossValConfig {
        iterations: 2,
        seed: 5,
        loo_mode: LooMode::Removal,
        meso: paper_meso_config(),
    };
    let ens = leave_one_out(&bundle.paa_ensemble, &cv);
    let pat = leave_one_out(&bundle.paa_pattern, &cv);
    // Voting across an ensemble's patterns beats single-pattern tests
    // (paper Table 2: 82.2% vs 80.4%). Allow slack for the small corpus.
    assert!(
        ens.mean_accuracy() >= pat.mean_accuracy() - 0.05,
        "ensemble {:.2} vs pattern {:.2}",
        ens.mean_accuracy(),
        pat.mean_accuracy()
    );
}

#[test]
fn data_reduction_matches_paper_ballpark() {
    let corpus = Corpus::build(corpus_config());
    let r = corpus.reduction.reduction_percent();
    // Paper: 80.6%. Synthetic corpus lands in the same regime.
    assert!((60.0..99.0).contains(&r), "reduction {r:.1}%");
}

#[test]
fn classifier_recognizes_unseen_clips() {
    let cfg = corpus_config();
    let corpus = Corpus::build(cfg);
    let bundle = DatasetBundle::build(&corpus);
    let clf = SpeciesClassifier::train(&bundle.paa_ensemble, cfg);

    let synth = ClipSynthesizer::new(cfg.synth);
    let extractor = EnsembleExtractor::new(cfg.extractor);
    let mut correct = 0usize;
    let mut total = 0usize;
    for &species in &SpeciesCode::ALL {
        for seed in [31_000u64, 32_000] {
            let clip = synth.clip(species, seed + species.label() as u64);
            for e in extractor.extract(&clip.samples) {
                if clip.label_for_range(e.start, e.end) != Some(species) {
                    continue;
                }
                if let Some(predicted) = clf.recognize(&e.samples) {
                    total += 1;
                    if predicted == species {
                        correct += 1;
                    }
                }
            }
        }
    }
    assert!(total >= 10, "too few test ensembles: {total}");
    let acc = correct as f64 / total as f64;
    assert!(
        acc > 0.35,
        "unseen-clip accuracy {acc:.2} ({correct}/{total})"
    );
}

#[test]
fn facade_reexports_are_usable() {
    // The facade must expose all five subsystems.
    let _ = acoustic_ensembles::dsp::Fft::new(8);
    let _ = acoustic_ensembles::sax::SaxEncoder::new(4, 4);
    let _ = acoustic_ensembles::meso::Meso::new(2, acoustic_ensembles::meso::MesoConfig::default());
    let _ = acoustic_ensembles::river::Pipeline::new();
    let _ = acoustic_ensembles::core::ExtractorConfig::default();
}
