//! End-to-end integration of the scope-sharded runtime through the
//! facade crate: real synthetic clips through the complete Figure 5
//! graph, plus deterministic fault-injection scenarios driving
//! `FailAfter` / `DropCloses`-shaped streams through the sharded
//! runner.

use acoustic_ensembles::core::ops::{clip_to_records, clips_record_source};
use acoustic_ensembles::core::pipeline::{full_pipeline, full_pipeline_sharded};
use acoustic_ensembles::core::prelude::*;
use acoustic_ensembles::river::fault::{DropCloses, FailAfter, TruncateAfter};
use acoustic_ensembles::river::ops::ScopeRepair;
use acoustic_ensembles::river::scope::validate_scopes;
use acoustic_ensembles::river::{Pipeline, PipelineError, Record, RecordKind};

fn archive_clips(n: u64) -> Vec<Vec<f64>> {
    let cfg = ExtractorConfig::default();
    let synth = ClipSynthesizer::new(SynthConfig::short_test());
    (0..n)
        .map(|seed| {
            let c = synth.clip(SpeciesCode::Hofi, seed);
            let usable = c.samples.len() - c.samples.len() % cfg.record_len;
            c.samples[..usable].to_vec()
        })
        .collect()
}

/// Real birdsong clips through the complete Figure 5 graph: the sharded
/// path reproduces the single-lane output byte for byte, with real
/// ensembles and patterns in the stream.
#[test]
fn figure5_archive_sharded_equals_streaming() {
    let cfg = ExtractorConfig::default();
    let clips = archive_clips(4);

    let mut single = Vec::new();
    full_pipeline(cfg, true)
        .run_streaming(
            clips_record_source(clips.clone(), cfg.sample_rate, cfg.record_len),
            &mut single,
        )
        .unwrap();
    validate_scopes(&single).unwrap();

    for workers in [2usize, 3] {
        let mut sharded = Vec::new();
        full_pipeline_sharded(cfg, true, workers)
            .run(
                clips_record_source(clips.clone(), cfg.sample_rate, cfg.record_len),
                &mut sharded,
            )
            .unwrap();
        assert_eq!(single, sharded, "workers={workers}");
    }
}

/// A producer that drops clip closes (`DropCloses`) leaves scopes
/// dangling; the per-shard `ScopeRepair` must synthesize exactly the
/// `BadCloseScope` records the single-lane path emits — same records,
/// same positions.
#[test]
fn dropped_closes_repair_identically_under_sharding() {
    let cfg = ExtractorConfig::default();
    let mut archive = Vec::new();
    for clip in archive_clips(3) {
        archive.extend(clip_to_records(
            &clip[..cfg.record_len * 4],
            cfg.sample_rate,
            cfg.record_len,
            &[],
        ));
    }

    // Fault upstream of both runners: every second close vanishes.
    let mut injector = Pipeline::new();
    injector.add(DropCloses::every(2));
    let damaged = injector.run(archive).unwrap();

    let build = || {
        let mut p = Pipeline::new();
        p.add(ScopeRepair::new());
        p
    };
    let mut single = Vec::new();
    build()
        .run_streaming(damaged.clone().into_iter(), &mut single)
        .unwrap();
    for workers in [1usize, 2, 4] {
        let mut sharded = Vec::new();
        build()
            .run_sharded(damaged.clone().into_iter(), &mut sharded, workers)
            .unwrap();
        assert_eq!(single, sharded, "workers={workers}");
        validate_scopes(&sharded).unwrap();
        let bad = sharded
            .iter()
            .filter(|r| r.kind == RecordKind::BadCloseScope)
            .count();
        assert!(bad > 0, "repair emitted no BadCloseScope records");
    }
}

/// A truncated stream (producer vanished mid-clip) repairs identically:
/// the dangling scope's `BadCloseScope` lands at the very end of the
/// merged output, exactly where the single-lane flush puts it.
#[test]
fn truncated_stream_repairs_identically_under_sharding() {
    let cfg = ExtractorConfig::default();
    let mut archive = Vec::new();
    for clip in archive_clips(3) {
        archive.extend(clip_to_records(
            &clip[..cfg.record_len * 4],
            cfg.sample_rate,
            cfg.record_len,
            &[],
        ));
    }
    let keep = archive.len() as u64 - 2; // cut inside the last clip
    let mut injector = Pipeline::new();
    injector.add(TruncateAfter::new(keep));
    let damaged = injector.run(archive).unwrap();

    let build = || {
        let mut p = Pipeline::new();
        p.add(ScopeRepair::new());
        p
    };
    let mut single = Vec::new();
    build()
        .run_streaming(damaged.clone().into_iter(), &mut single)
        .unwrap();
    assert_eq!(single.last().unwrap().kind, RecordKind::BadCloseScope);
    for workers in [2usize, 3] {
        let mut sharded = Vec::new();
        build()
            .run_sharded(damaged.clone().into_iter(), &mut sharded, workers)
            .unwrap();
        assert_eq!(single, sharded, "workers={workers}");
    }
}

/// A crashing operator (`FailAfter`) aborts the sharded run with the
/// same operator error as the single lane, and the records delivered
/// before the abort are a prefix of the single-lane output.
#[test]
fn crashing_operator_aborts_sharded_run() {
    let cfg = ExtractorConfig::default();
    let clip = &archive_clips(1)[0];
    let records = clip_to_records(
        &clip[..cfg.record_len * 6],
        cfg.sample_rate,
        cfg.record_len,
        &[],
    );
    let build = || {
        let mut p = Pipeline::new();
        p.add(FailAfter::new(3));
        p
    };
    let mut single: Vec<Record> = Vec::new();
    let single_err = build()
        .run_streaming(records.clone().into_iter(), &mut single)
        .unwrap_err();
    let mut sharded: Vec<Record> = Vec::new();
    let sharded_err = build()
        .run_sharded(records.into_iter(), &mut sharded, 2)
        .unwrap_err();
    assert!(matches!(single_err, PipelineError::Operator { .. }));
    assert!(matches!(sharded_err, PipelineError::Operator { .. }));
    // One clip = one unit = one shard: the failure point is identical.
    assert_eq!(single, sharded);
}
