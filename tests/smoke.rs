//! Smoke test: the facade quickstart path, end to end.
//!
//! Mirrors the `examples/quickstart.rs` flow through the public facade
//! re-exports so any break in the cross-crate DAG (dsp → timeseries →
//! core → river/meso → facade) fails tier-1 immediately.

use acoustic_ensembles::core::pipeline::featurize_ensemble;
use acoustic_ensembles::core::prelude::*;

#[test]
fn quickstart_extracts_ensembles_from_a_paper_scale_clip() {
    // Synthesize the same clip the crate-level docs use: 30 s of
    // ambience with Northern cardinal song bouts.
    let synth = ClipSynthesizer::new(SynthConfig::paper());
    let clip = synth.clip(SpeciesCode::Noca, 42);
    assert!(!clip.events.is_empty(), "clip should contain song bouts");
    assert!(clip.duration() > 29.0, "paper clips are 30 s");

    // Extract ensembles with the default (paper) parameters.
    let extractor = EnsembleExtractor::new(ExtractorConfig::default());
    let ensembles = extractor.extract(&clip.samples);
    assert!(
        !ensembles.is_empty(),
        "a clip with song bouts must yield at least one ensemble"
    );

    // Ensembles are in-bounds, ordered and disjoint.
    let mut prev_end = 0usize;
    for e in &ensembles {
        assert!(e.start >= prev_end, "ensembles out of order");
        assert!(e.end <= clip.samples.len(), "ensemble exceeds the clip");
        assert!(!e.is_empty());
        prev_end = e.end;
    }

    // Featurization produces finite, correctly sized PAA patterns for
    // at least one ensemble (short ones may produce none).
    let cfg = ExtractorConfig::default();
    let patterns: Vec<Vec<f64>> = ensembles
        .iter()
        .flat_map(|e| featurize_ensemble(&e.samples, &cfg, true))
        .collect();
    assert!(!patterns.is_empty(), "no ensemble produced a pattern");
    for p in &patterns {
        assert_eq!(p.len(), 105, "PAA patterns are 105-dimensional");
        assert!(p.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn facade_reexports_cover_every_subsystem() {
    use acoustic_ensembles::river::prelude::*;

    // One call into each re-exported crate, so a broken re-export (not
    // just a broken implementation) is caught here.
    let fft = acoustic_ensembles::dsp::Fft::new(8);
    let spectrum = fft.forward(&[acoustic_ensembles::dsp::Complex64::new(1.0, 0.0); 8]);
    assert_eq!(spectrum.len(), 8);

    let z = acoustic_ensembles::sax::znormalize(&[1.0, 2.0, 3.0, 4.0]);
    assert_eq!(z.len(), 4);

    let mut memory =
        acoustic_ensembles::meso::Meso::new(2, acoustic_ensembles::meso::MesoConfig::default());
    memory.train(&[0.0, 0.0], 0);
    assert_eq!(memory.classify(&[0.1, 0.1]), Some(0));

    let mut pipeline = Pipeline::new();
    pipeline.add(Passthrough);
    let out = pipeline
        .run(vec![Record::open_scope(1, vec![]), Record::close_scope(1)])
        .expect("trivial pipeline");
    assert_eq!(out.len(), 2);
}
